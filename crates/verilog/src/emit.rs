//! Lowered-netlist → Verilog emission.
//!
//! [`emit_netlist`] converts a [`Netlist`] into a [`VModule`]; [`emit_verilog`] renders
//! it to source text. In the ReChisel workflow this is the final stage of the "Chisel →
//! FIRRTL → Verilog" compilation path whose output is handed to the simulator as the
//! device under test.

use rechisel_firrtl::ir::{Direction, Expression, PrimOp};
use rechisel_firrtl::lower::{Netlist, SignalInfo};

use crate::ast::{
    VAlways, VAssign, VDecl, VExpr, VMemDecl, VMemWrite, VModule, VPort, VPortDir, VRegUpdate,
};

/// Errors produced during emission.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EmitError {
    /// An expression form that lowering should have removed reached the emitter.
    Unsupported(String),
}

impl std::fmt::Display for EmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EmitError::Unsupported(what) => write!(f, "unsupported construct: {what}"),
        }
    }
}

impl std::error::Error for EmitError {}

/// Emits a netlist as a Verilog module AST.
///
/// # Errors
///
/// Returns [`EmitError::Unsupported`] if the netlist contains expression forms that
/// lowering should have eliminated (aggregate accesses, defect carriers).
pub fn emit_netlist(netlist: &Netlist) -> Result<VModule, EmitError> {
    let mut module = VModule { name: netlist.name.clone(), ..VModule::default() };
    for port in &netlist.ports {
        module.ports.push(VPort {
            name: port.name.clone(),
            dir: match port.direction {
                Direction::Input => VPortDir::Input,
                Direction::Output => VPortDir::Output,
            },
            width: port.info.width,
        });
    }
    let output_names: Vec<String> = netlist.outputs().map(|p| p.name.clone()).collect();
    for def in &netlist.defs {
        if !output_names.contains(&def.name) {
            module.decls.push(VDecl {
                name: def.name.clone(),
                width: def.info.width,
                is_reg: false,
            });
        }
        module
            .assigns
            .push(VAssign { target: def.name.clone(), expr: emit_expr(&def.expr, netlist)? });
    }
    // Group register updates by clock.
    for reg in &netlist.regs {
        module.decls.push(VDecl { name: reg.name.clone(), width: reg.info.width, is_reg: true });
        let update = VRegUpdate {
            target: reg.name.clone(),
            next: emit_expr(&reg.next, netlist)?,
            reset: match &reg.reset {
                Some((cond, init)) => Some((emit_expr(cond, netlist)?, emit_expr(init, netlist)?)),
                None => None,
            },
        };
        match module.always.iter_mut().find(|a| a.clock == reg.clock) {
            Some(block) => block.updates.push(update),
            None => module.always.push(VAlways {
                clock: reg.clock.clone(),
                updates: vec![update],
                mem_writes: Vec::new(),
            }),
        }
    }
    // Memories: a reg array per memory (with an `initial` image when declared), each
    // write port folded into the always block of ITS OWN clock — ports of one memory
    // may sit in different clock domains. Combinational reads appear inline in
    // `assigns`/register next-state expressions as array indexing; sequential reads
    // were hoisted by lowering into ordinary registers (emitted above) whose
    // next-state is the guarded array read.
    for mem in &netlist.mems {
        module.mems.push(VMemDecl {
            name: mem.name.clone(),
            width: mem.info.width,
            depth: mem.depth,
            init: mem.init.clone(),
        });
        for port in &mem.writes {
            let enable = match &port.enable {
                Expression::UIntLiteral { value: 1, .. } => None,
                e => Some(emit_expr(e, netlist)?),
            };
            // The engines drop out-of-range writes; IEEE Verilog leaves an
            // out-of-bounds array store implementation-defined, so fold the range
            // check into the enable whenever the address can exceed the depth.
            let enable = if addr_can_overrun(&port.addr, mem.depth, netlist) {
                let guard = in_range(emit_expr(&port.addr, netlist)?, mem.depth);
                Some(match enable {
                    Some(en) => VExpr::Binary { op: "&&", lhs: Box::new(en), rhs: Box::new(guard) },
                    None => guard,
                })
            } else {
                enable
            };
            // A lane-masked port stores a read-modify-write merge: lanes whose mask
            // bit is clear keep the old word (nonblocking reads see pre-edge data, so
            // the merge composes with the engines' old-data semantics).
            let value = match &port.mask {
                None => emit_expr(&port.value, netlist)?,
                Some(mask) => {
                    let old = VExpr::Index {
                        base: mem.name.clone(),
                        index: Box::new(emit_expr(&port.addr, netlist)?),
                    };
                    let mask_e = emit_expr(mask, netlist)?;
                    let keep = VExpr::Binary {
                        op: "&",
                        lhs: Box::new(old),
                        rhs: Box::new(VExpr::Unary { op: "~", arg: Box::new(mask_e.clone()) }),
                    };
                    let store = VExpr::Binary {
                        op: "&",
                        lhs: Box::new(emit_expr(&port.value, netlist)?),
                        rhs: Box::new(mask_e),
                    };
                    VExpr::Binary { op: "|", lhs: Box::new(keep), rhs: Box::new(store) }
                }
            };
            let write = VMemWrite {
                mem: mem.name.clone(),
                addr: emit_expr(&port.addr, netlist)?,
                value,
                enable,
            };
            match module.always.iter_mut().find(|a| a.clock == port.clock) {
                Some(block) => block.mem_writes.push(write),
                None => module.always.push(VAlways {
                    clock: port.clock.clone(),
                    updates: Vec::new(),
                    mem_writes: vec![write],
                }),
            }
        }
    }
    Ok(module)
}

/// Emits a netlist directly as Verilog source text.
///
/// # Errors
///
/// See [`emit_netlist`].
pub fn emit_verilog(netlist: &Netlist) -> Result<String, EmitError> {
    Ok(emit_netlist(netlist)?.to_verilog())
}

fn signal_info(netlist: &Netlist, name: &str) -> SignalInfo {
    netlist.signal(name).unwrap_or(SignalInfo { width: 1, signed: false, is_clock: false })
}

/// True when `addr` can evaluate to a value at or beyond `depth` — i.e. the address
/// expression's width covers more words than the memory holds. Literal addresses are
/// checked exactly (elaboration already rejects out-of-range literals).
fn addr_can_overrun(addr: &Expression, depth: usize, netlist: &Netlist) -> bool {
    if let Expression::UIntLiteral { value, .. } = addr {
        return *value >= depth as u128;
    }
    let width = expr_width(addr, netlist).min(127);
    (1u128 << width) > depth as u128
}

/// `addr < depth` as a Verilog comparison against an unsized-friendly literal.
fn in_range(addr: VExpr, depth: usize) -> VExpr {
    let bound_width = min_width(depth as u128);
    VExpr::Binary {
        op: "<",
        lhs: Box::new(addr),
        rhs: Box::new(VExpr::lit(depth as u128, bound_width)),
    }
}

fn emit_expr(expr: &Expression, netlist: &Netlist) -> Result<VExpr, EmitError> {
    match expr {
        Expression::Ref(name) => Ok(VExpr::ident(name.clone())),
        Expression::UIntLiteral { value, width } => {
            Ok(VExpr::lit(*value, width.unwrap_or_else(|| min_width(*value))))
        }
        Expression::SIntLiteral { value, width } => {
            let w = width.unwrap_or(32);
            let masked =
                if w >= 128 { *value as u128 } else { (*value as u128) & ((1u128 << w) - 1) };
            Ok(VExpr::lit(masked, w))
        }
        Expression::Mux { cond, tval, fval } => Ok(VExpr::Conditional {
            cond: Box::new(emit_expr(cond, netlist)?),
            then: Box::new(emit_expr(tval, netlist)?),
            otherwise: Box::new(emit_expr(fval, netlist)?),
        }),
        // Sequential reads are hoisted into implicit registers by lowering; a
        // surviving sync read means the netlist skipped lowering.
        Expression::MemRead { sync: true, .. } => Err(EmitError::Unsupported(expr.to_string())),
        Expression::MemRead { mem, addr, sync: false, .. } => {
            let indexed =
                VExpr::Index { base: mem.clone(), index: Box::new(emit_expr(addr, netlist)?) };
            // The engines define out-of-range reads as zero; plain `mem[addr]` would
            // read X in Verilog, so guard whenever the address can exceed the depth.
            match netlist.mems.iter().find(|m| &m.name == mem) {
                Some(m) if addr_can_overrun(addr, m.depth, netlist) => Ok(VExpr::Conditional {
                    cond: Box::new(in_range(emit_expr(addr, netlist)?, m.depth)),
                    then: Box::new(indexed),
                    otherwise: Box::new(VExpr::lit(0, m.info.width)),
                }),
                _ => Ok(indexed),
            }
        }
        Expression::Prim { op, args, params } => emit_prim(*op, args, params, netlist),
        other => Err(EmitError::Unsupported(other.to_string())),
    }
}

fn min_width(value: u128) -> u32 {
    if value == 0 {
        1
    } else {
        128 - value.leading_zeros()
    }
}

/// True when the expression is signed under the netlist's signal typing.
fn is_signed(expr: &Expression, netlist: &Netlist) -> bool {
    match expr {
        Expression::Ref(name) => signal_info(netlist, name).signed,
        Expression::SIntLiteral { .. } => true,
        Expression::Prim { op, args, .. } => match op {
            PrimOp::AsSInt | PrimOp::Neg => true,
            PrimOp::Add | PrimOp::Sub | PrimOp::Mul | PrimOp::Div | PrimOp::Rem | PrimOp::Pad => {
                args.iter().any(|a| is_signed(a, netlist))
            }
            _ => false,
        },
        Expression::Mux { tval, .. } => is_signed(tval, netlist),
        Expression::MemRead { mem, .. } => {
            netlist.mems.iter().find(|m| &m.name == mem).map(|m| m.info.signed).unwrap_or(false)
        }
        _ => false,
    }
}

fn emit_prim(
    op: PrimOp,
    args: &[Expression],
    params: &[i64],
    netlist: &Netlist,
) -> Result<VExpr, EmitError> {
    use PrimOp::*;
    let arg = |i: usize| emit_expr(&args[i], netlist);
    let signed_wrap = |e: VExpr, signed: bool| if signed { VExpr::Signed(Box::new(e)) } else { e };
    let binary = |op_token: &'static str, netlist: &Netlist| -> Result<VExpr, EmitError> {
        let signed = is_signed(&args[0], netlist) || is_signed(&args[1], netlist);
        Ok(VExpr::Binary {
            op: op_token,
            lhs: Box::new(signed_wrap(emit_expr(&args[0], netlist)?, signed)),
            rhs: Box::new(signed_wrap(emit_expr(&args[1], netlist)?, signed)),
        })
    };
    match op {
        Add => binary("+", netlist),
        Sub => binary("-", netlist),
        Mul => binary("*", netlist),
        Div => binary("/", netlist),
        Rem => binary("%", netlist),
        And => binary("&", netlist),
        Or => binary("|", netlist),
        Xor => binary("^", netlist),
        Eq => binary("==", netlist),
        Neq => binary("!=", netlist),
        Lt => binary("<", netlist),
        Leq => binary("<=", netlist),
        Gt => binary(">", netlist),
        Geq => binary(">=", netlist),
        Dshl => binary("<<", netlist),
        Dshr => binary(">>", netlist),
        Not => Ok(VExpr::Unary { op: "~", arg: Box::new(arg(0)?) }),
        Neg => Ok(VExpr::Unary { op: "-", arg: Box::new(arg(0)?) }),
        AndR => Ok(VExpr::Unary { op: "&", arg: Box::new(arg(0)?) }),
        OrR => Ok(VExpr::Unary { op: "|", arg: Box::new(arg(0)?) }),
        XorR => Ok(VExpr::Unary { op: "^", arg: Box::new(arg(0)?) }),
        Shl => Ok(VExpr::Binary {
            op: "<<",
            lhs: Box::new(arg(0)?),
            rhs: Box::new(VExpr::lit(params[0].max(0) as u128, 32)),
        }),
        Shr => Ok(VExpr::Binary {
            op: ">>",
            lhs: Box::new(arg(0)?),
            rhs: Box::new(VExpr::lit(params[0].max(0) as u128, 32)),
        }),
        Cat => Ok(VExpr::Concat(vec![arg(0)?, arg(1)?])),
        Bits => {
            let hi = params[0].max(0) as u32;
            let lo = params[1].max(0) as u32;
            match arg(0)? {
                base @ VExpr::Ident(_) => Ok(VExpr::Slice { base: Box::new(base), hi, lo }),
                other => {
                    // Verilog cannot slice arbitrary expressions; shift and mask instead.
                    let shifted = VExpr::Binary {
                        op: ">>",
                        lhs: Box::new(other),
                        rhs: Box::new(VExpr::lit(lo as u128, 32)),
                    };
                    let width = hi - lo + 1;
                    let mask = if width >= 128 { u128::MAX } else { (1u128 << width) - 1 };
                    Ok(VExpr::Binary {
                        op: "&",
                        lhs: Box::new(shifted),
                        rhs: Box::new(VExpr::lit(mask, width)),
                    })
                }
            }
        }
        AsUInt | AsBool | AsClock | AsAsyncReset | Tail => arg(0),
        AsSInt => Ok(VExpr::Signed(Box::new(arg(0)?))),
        Pad => arg(0),
        Head => {
            let keep = params[0].max(1) as u32;
            let total = expr_width(&args[0], netlist);
            let lo = total.saturating_sub(keep);
            match arg(0)? {
                base @ VExpr::Ident(_) => {
                    Ok(VExpr::Slice { base: Box::new(base), hi: total.saturating_sub(1), lo })
                }
                other => Ok(VExpr::Binary {
                    op: ">>",
                    lhs: Box::new(other),
                    rhs: Box::new(VExpr::lit(lo as u128, 32)),
                }),
            }
        }
    }
}

fn expr_width(expr: &Expression, netlist: &Netlist) -> u32 {
    match expr {
        Expression::Ref(name) => signal_info(netlist, name).width,
        Expression::UIntLiteral { value, width } => width.unwrap_or_else(|| min_width(*value)),
        Expression::SIntLiteral { width, .. } => width.unwrap_or(32),
        Expression::MemRead { mem, .. } => {
            netlist.mems.iter().find(|m| &m.name == mem).map(|m| m.info.width).unwrap_or(32)
        }
        _ => 32,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rechisel_firrtl::lower_circuit;
    use rechisel_hcl::prelude::*;

    #[test]
    fn emit_combinational_module() {
        let mut m = ModuleBuilder::new("AndGate");
        let a = m.input("a", Type::bool());
        let b = m.input("b", Type::bool());
        let y = m.output("y", Type::bool());
        m.connect(&y, &a.and(&b));
        let netlist = lower_circuit(&m.into_circuit()).unwrap();
        let text = emit_verilog(&netlist).unwrap();
        assert!(text.contains("module AndGate("));
        assert!(text.contains("assign y = (a & b);"));
        assert!(text.contains("endmodule"));
    }

    #[test]
    fn emit_register_with_reset() {
        let mut m = ModuleBuilder::new("Dff");
        let d = m.input("d", Type::uint(4));
        let q = m.output("q", Type::uint(4));
        let r = m.reg_next_init("r", Type::uint(4), &d, &Signal::lit_w(0, 4));
        m.connect(&q, &r);
        let netlist = lower_circuit(&m.into_circuit()).unwrap();
        let module = emit_netlist(&netlist).unwrap();
        assert_eq!(module.always.len(), 1);
        assert_eq!(module.always[0].clock, "clock");
        assert!(module.always[0].updates[0].reset.is_some());
        let text = module.to_verilog();
        assert!(text.contains("always @(posedge clock)"));
        assert!(text.contains("r <= d;"));
    }

    #[test]
    fn emit_signed_comparison_uses_signed_cast() {
        let mut m = ModuleBuilder::new("SignedCmp");
        let a = m.input("a", Type::sint(8));
        let b = m.input("b", Type::sint(8));
        let y = m.output("y", Type::bool());
        m.connect(&y, &a.lt(&b));
        let netlist = lower_circuit(&m.into_circuit()).unwrap();
        let text = emit_verilog(&netlist).unwrap();
        assert!(text.contains("$signed(a)"));
        assert!(text.contains("$signed(b)"));
    }

    #[test]
    fn emit_vector_design() {
        let mut m = ModuleBuilder::new("VecCat");
        let a = m.input("a", Type::bool());
        let b = m.input("b", Type::bool());
        let out = m.output("out", Type::uint(2));
        let v = m.vec_init("v", Type::bool(), &[a, b]);
        m.connect(&out, &v.as_uint());
        let netlist = lower_circuit(&m.into_circuit()).unwrap();
        let text = emit_verilog(&netlist).unwrap();
        assert!(text.contains("v_0"));
        assert!(text.contains("v_1"));
        assert!(text.contains("{v_1, v_0}"));
    }

    #[test]
    fn emit_memory_module() {
        let mut m = ModuleBuilder::new("Ram");
        let we = m.input("we", Type::bool());
        let waddr = m.input("waddr", Type::uint(3));
        let wdata = m.input("wdata", Type::uint(8));
        let raddr = m.input("raddr", Type::uint(3));
        let rdata = m.output("rdata", Type::uint(8));
        let mem = m.mem("store", Type::uint(8), 8);
        m.when(&we, |m| {
            m.mem_write(&mem, &waddr, &wdata);
        });
        m.connect(&rdata, &mem.read(&raddr));
        let netlist = lower_circuit(&m.into_circuit()).unwrap();
        let module = emit_netlist(&netlist).unwrap();
        assert_eq!(module.mems.len(), 1);
        assert_eq!(module.mems[0].depth, 8);
        let text = module.to_verilog();
        assert!(text.contains("reg [7:0] store [0:7];"));
        assert!(text.contains("assign rdata = store[raddr];"));
        assert!(text.contains("always @(posedge clock)"));
        assert!(text.contains("if (we) begin"));
        assert!(text.contains("store[waddr] <= wdata;"));
    }

    #[test]
    fn emit_non_power_of_two_memory_guards_out_of_range_accesses() {
        // Depth 5 with a 3-bit address: addresses 5..8 exist in the wire domain, so
        // the emitted RTL must read 0 (not X) and drop writes for them, matching the
        // engines' semantics.
        let mut m = ModuleBuilder::new("OddRam");
        let we = m.input("we", Type::bool());
        let addr = m.input("addr", Type::uint(3));
        let wdata = m.input("wdata", Type::uint(8));
        let rdata = m.output("rdata", Type::uint(8));
        let mem = m.mem("store", Type::uint(8), 5);
        m.when(&we, |m| {
            m.mem_write(&mem, &addr, &wdata);
        });
        m.connect(&rdata, &mem.read(&addr));
        let netlist = lower_circuit(&m.into_circuit()).unwrap();
        let text = emit_verilog(&netlist).unwrap();
        assert!(text.contains("reg [7:0] store [0:4];"), "{text}");
        assert!(text.contains("assign rdata = ((addr < 3'd5) ? store[addr] : 8'd0);"), "{text}");
        assert!(text.contains("if ((we && (addr < 3'd5))) begin"), "{text}");
        // Full-range power-of-two memories stay unguarded (idiomatic indexing).
        let mut m = ModuleBuilder::new("Pow2Ram");
        let addr = m.input("addr", Type::uint(3));
        let rdata = m.output("rdata", Type::uint(8));
        let mem = m.mem("store", Type::uint(8), 8);
        m.connect(&rdata, &mem.read(&addr));
        let netlist = lower_circuit(&m.into_circuit()).unwrap();
        let text = emit_verilog(&netlist).unwrap();
        assert!(text.contains("assign rdata = store[addr];"), "{text}");
    }

    #[test]
    fn emit_masked_write_as_lane_merge() {
        let mut m = ModuleBuilder::new("MaskedRam");
        let addr = m.input("addr", Type::uint(2));
        let wdata = m.input("wdata", Type::uint(8));
        let wmask = m.input("wmask", Type::uint(8));
        let rdata = m.output("rdata", Type::uint(8));
        let mem = m.mem("store", Type::uint(8), 4);
        m.mem_write_masked(&mem, &addr, &wdata, &wmask);
        m.connect(&rdata, &mem.read(&addr));
        let netlist = rechisel_firrtl::lower_circuit(&m.into_circuit()).unwrap();
        let text = emit_verilog(&netlist).unwrap();
        // Lanes whose mask bit is clear keep the old word: read-modify-write merge.
        assert!(
            text.contains("store[addr] <= ((store[addr] & (~wmask)) | (wdata & wmask));"),
            "{text}"
        );
    }

    #[test]
    fn emit_dual_clock_ports_in_separate_always_blocks() {
        let mut m = ModuleBuilder::raw("DualClock");
        let clk_a = m.input("clk_a", Type::Clock);
        let clk_b = m.input("clk_b", Type::Clock);
        let addr = m.input("addr", Type::uint(2));
        let din = m.input("din", Type::uint(4));
        let dout = m.output("dout", Type::uint(4));
        let mem = m.mem("store", Type::uint(4), 4);
        m.with_clock(&clk_a, |m| m.mem_write(&mem, &addr, &din));
        m.with_clock(&clk_b, |m| m.mem_write(&mem, &addr, &din));
        m.connect(&dout, &mem.read(&addr));
        let netlist = rechisel_firrtl::lower_circuit(&m.into_circuit()).unwrap();
        let module = emit_netlist(&netlist).unwrap();
        assert_eq!(module.always.len(), 2, "one always block per write clock");
        let text = module.to_verilog();
        assert!(text.contains("always @(posedge clk_a)"), "{text}");
        assert!(text.contains("always @(posedge clk_b)"), "{text}");
    }

    #[test]
    fn emit_sync_read_as_registered_always_read() {
        let mut m = ModuleBuilder::new("SyncRam");
        let addr = m.input("addr", Type::uint(2));
        let rdata = m.output("rdata", Type::uint(8));
        let mem = m.mem("store", Type::uint(8), 4);
        m.connect(&rdata, &mem.read(&addr));
        let comb_only = rechisel_firrtl::lower_circuit(&m.into_circuit()).unwrap();
        assert!(emit_verilog(&comb_only).unwrap().contains("assign rdata = store[addr];"));

        let mut m = ModuleBuilder::new("SyncRam");
        let addr = m.input("addr", Type::uint(2));
        let rdata = m.output("rdata", Type::uint(8));
        let mem = m.mem("store", Type::uint(8), 4);
        m.connect(&rdata, &mem.read_sync(&addr));
        let netlist = rechisel_firrtl::lower_circuit(&m.into_circuit()).unwrap();
        let text = emit_verilog(&netlist).unwrap();
        // The hoisted read register is an ordinary reg updated on the clock edge.
        assert!(text.contains("reg [7:0] store_sr0;"), "{text}");
        assert!(text.contains("always @(posedge clock)"), "{text}");
        assert!(text.contains("store_sr0 <= store[addr];"), "{text}");
        assert!(text.contains("assign rdata = store_sr0;"), "{text}");
    }

    #[test]
    fn emit_initialized_memory_as_initial_block() {
        let mut m = ModuleBuilder::new("Rom");
        let addr = m.input("addr", Type::uint(2));
        let dout = m.output("dout", Type::uint(8));
        let mem = m.mem("rom", Type::uint(8), 4);
        m.mem_init(&mem, &[0x11, 0x22, 0x33]);
        m.connect(&dout, &mem.read(&addr));
        let netlist = rechisel_firrtl::lower_circuit(&m.into_circuit()).unwrap();
        let text = emit_verilog(&netlist).unwrap();
        assert!(text.contains("initial begin"), "{text}");
        assert!(text.contains("rom[0] = 8'd17;"), "{text}");
        assert!(text.contains("rom[2] = 8'd51;"), "{text}");
    }

    #[test]
    fn output_ports_are_not_redeclared() {
        let mut m = ModuleBuilder::new("Pass");
        let a = m.input("a", Type::uint(8));
        let out = m.output("out", Type::uint(8));
        m.connect(&out, &a);
        let netlist = lower_circuit(&m.into_circuit()).unwrap();
        let module = emit_netlist(&netlist).unwrap();
        assert!(module.decls.iter().all(|d| d.name != "out"));
        assert!(module.assigns.iter().any(|a| a.target == "out"));
    }
}
