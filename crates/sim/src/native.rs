//! The native engine: AOT-compiled straight-line simulation behind [`SimEngine`].
//!
//! [`NativeSimulator`] drives machine code instead of an instruction tape. The
//! pipeline is generate → build → load:
//!
//! 1. [`crate::codegen`] emits the levelized [`Tape`] as a self-contained, zero-dep
//!    Rust crate (`step`/`step_clock` as straight-line shifts and masks),
//! 2. an AOT driver writes the crate to a scratch directory and invokes
//!    `cargo build --release --offline` on it,
//! 3. the produced `cdylib` is loaded with `dlopen` and its fingerprint-checked
//!    entry points are called through the ordinary [`SimEngine`] trait — peek/poke,
//!    memory access, per-domain clock stepping and the `SyncReadBeforeClock` taint
//!    all behave exactly like the compiled tape engine, so goldens and the
//!    differential fuzz run unmodified against it.
//!
//! Builds are cached process-wide by source fingerprint: constructing many
//! simulators for the same design (a fuzz run, a benchmark) compiles the generated
//! crate once. Tapes the codegen cannot express ([dynamic
//! shapes](crate::CodegenError::DynamicShape)) and non-unix hosts degrade gracefully
//! — [`native_or_fallback`] returns a [`CompiledSimulator`] plus a typed
//! [`NativeFallback`] notice instead of failing, which is what
//! [`EngineKind::Native`](crate::EngineKind) uses.
//!
//! Environment knobs: `RECHISEL_NATIVE_DIR` pins the scratch directory (and keeps
//! the generated sources for inspection/artifact upload); `RECHISEL_NATIVE_KEEP=1`
//! keeps artifacts in the default temp location too.

use std::collections::{BTreeSet, HashMap};
use std::path::PathBuf;
use std::process::Command;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

use rechisel_firrtl::lower::Netlist;

use crate::codegen::{generate_crate, CodegenError, GeneratedCrate, NATIVE_ABI_VERSION};
use crate::compiled::{CompiledSimulator, Tape};
use crate::engine::SimEngine;
use crate::eval::mask;
use crate::simulator::SimError;

/// Errors from the AOT generate→build→load pipeline.
#[derive(Debug)]
pub enum NativeBuildError {
    /// The netlist could not be compiled to a tape at all (no engine could run it).
    Compile(SimError),
    /// The tape compiled but contains shapes the codegen cannot express; the caller
    /// should fall back to the compiled tape engine.
    Unsupported(CodegenError),
    /// The host platform has no dynamic loader support (non-unix).
    Platform(&'static str),
    /// Filesystem trouble while writing the generated crate.
    Io(String),
    /// `cargo build` of the generated crate failed.
    Build {
        /// Trailing stderr of the failed build.
        stderr: String,
    },
    /// The built artifact could not be loaded or failed its ABI/fingerprint check.
    Load(String),
}

impl NativeBuildError {
    /// Whether falling back to the compiled tape engine is the right response:
    /// true for *expected* limitations (unsupported tape shapes, missing platform
    /// support), false for environmental failures (I/O, build, load) that indicate
    /// something is broken and should surface as an error.
    pub fn recoverable(&self) -> bool {
        matches!(self, NativeBuildError::Unsupported(_) | NativeBuildError::Platform(_))
    }
}

impl std::fmt::Display for NativeBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NativeBuildError::Compile(e) => write!(f, "tape compilation failed: {e}"),
            NativeBuildError::Unsupported(e) => write!(f, "unsupported by native codegen: {e}"),
            NativeBuildError::Platform(what) => write!(f, "platform unsupported: {what}"),
            NativeBuildError::Io(e) => write!(f, "could not write generated crate: {e}"),
            NativeBuildError::Build { stderr } => {
                write!(f, "cargo build of the generated crate failed:\n{stderr}")
            }
            NativeBuildError::Load(e) => write!(f, "could not load built artifact: {e}"),
        }
    }
}

impl std::error::Error for NativeBuildError {}

/// Options controlling where generated crates are written and whether they are kept.
#[derive(Debug, Clone, Default)]
pub struct NativeOptions {
    /// Base directory for generated crates; a unique subdirectory per build is
    /// created inside it. Defaults to the system temp directory.
    pub dir: Option<PathBuf>,
    /// Keep the generated sources and build tree after loading (for inspection or
    /// CI artifact upload). Implied by setting `RECHISEL_NATIVE_DIR`.
    pub keep_artifacts: bool,
}

impl NativeOptions {
    /// Options from the environment: `RECHISEL_NATIVE_DIR` pins (and keeps) the
    /// scratch directory, `RECHISEL_NATIVE_KEEP=1` keeps artifacts anywhere.
    pub fn from_env() -> Self {
        let dir = std::env::var_os("RECHISEL_NATIVE_DIR").map(PathBuf::from);
        let keep_artifacts =
            dir.is_some() || std::env::var_os("RECHISEL_NATIVE_KEEP").is_some_and(|v| v == "1");
        Self { dir, keep_artifacts }
    }
}

/// Minimal `dlopen` binding — raw libc symbols, no crates. `dlopen`/`dlsym` live in
/// libc itself on every platform we build for (glibc ≥ 2.34 folded libdl in), so no
/// link flags are needed.
#[cfg(unix)]
mod dl {
    use std::ffi::{c_char, c_int, c_void, CString};
    use std::os::unix::ffi::OsStrExt;
    use std::path::Path;

    extern "C" {
        fn dlopen(filename: *const c_char, flags: c_int) -> *mut c_void;
        fn dlsym(handle: *mut c_void, symbol: *const c_char) -> *mut c_void;
        fn dlerror() -> *mut c_char;
        fn dlclose(handle: *mut c_void) -> c_int;
    }

    const RTLD_NOW: c_int = 2;

    fn last_error() -> String {
        // Safety: dlerror returns a thread-local NUL-terminated string or null.
        unsafe {
            let msg = dlerror();
            if msg.is_null() {
                "unknown dlerror".to_string()
            } else {
                std::ffi::CStr::from_ptr(msg).to_string_lossy().into_owned()
            }
        }
    }

    /// An owned shared-library handle; closed on drop.
    #[derive(Debug)]
    pub(crate) struct Handle(*mut c_void);

    // Safety: the handle is only used for dlsym lookups, which glibc allows from any
    // thread, and the loaded code is stateless (all state is caller-provided).
    unsafe impl Send for Handle {}
    unsafe impl Sync for Handle {}

    impl Handle {
        pub(crate) fn open(path: &Path) -> Result<Self, String> {
            let c_path = CString::new(path.as_os_str().as_bytes())
                .map_err(|_| "path contains a NUL byte".to_string())?;
            // Safety: c_path is a valid NUL-terminated string.
            let handle = unsafe { dlopen(c_path.as_ptr(), RTLD_NOW) };
            if handle.is_null() {
                Err(last_error())
            } else {
                Ok(Self(handle))
            }
        }

        pub(crate) fn sym(&self, name: &str) -> Result<*mut c_void, String> {
            let c_name = CString::new(name).map_err(|_| "symbol contains NUL".to_string())?;
            // Safety: self.0 is a live handle, c_name a valid C string.
            let sym = unsafe { dlsym(self.0, c_name.as_ptr()) };
            if sym.is_null() {
                Err(format!("missing symbol `{name}`: {}", last_error()))
            } else {
                Ok(sym)
            }
        }
    }

    impl Drop for Handle {
        fn drop(&mut self) {
            // Safety: self.0 came from a successful dlopen and is closed only once.
            unsafe {
                dlclose(self.0);
            }
        }
    }
}

#[cfg(not(unix))]
mod dl {
    use std::ffi::c_void;
    use std::path::Path;

    /// Stub handle for hosts without a dynamic loader; open always fails, which
    /// surfaces as a recoverable [`super::NativeBuildError::Platform`] upstream.
    #[derive(Debug)]
    pub(crate) struct Handle;

    impl Handle {
        pub(crate) fn open(_path: &Path) -> Result<Self, String> {
            Err("dlopen is unavailable on this platform".to_string())
        }

        pub(crate) fn sym(&self, _name: &str) -> Result<*mut c_void, String> {
            Err("dlsym is unavailable on this platform".to_string())
        }
    }
}

type EvalFn = unsafe extern "C" fn(*mut u128, *const u128);
type StepFn = unsafe extern "C" fn(*mut u128, *mut u128);
type StepDomainFn = unsafe extern "C" fn(*mut u128, *mut u128, u32);

/// A loaded generated library with its resolved entry points.
#[derive(Debug)]
struct NativeLib {
    /// Keeps the mapping alive for as long as any simulator holds the fn pointers.
    _handle: dl::Handle,
    eval: EvalFn,
    step: StepFn,
    step_domain: StepDomainFn,
}

/// Process-wide build cache keyed by generated-source fingerprint: one `cargo build`
/// per distinct design per process, however many simulators are constructed.
fn lib_cache() -> &'static Mutex<HashMap<u64, Arc<NativeLib>>> {
    static CACHE: OnceLock<Mutex<HashMap<u64, Arc<NativeLib>>>> = OnceLock::new();
    CACHE.get_or_init(|| Mutex::new(HashMap::new()))
}

fn sanitize(name: &str) -> String {
    name.chars().map(|c| if c.is_ascii_alphanumeric() { c } else { '-' }).take(32).collect()
}

fn getter(handle: &dl::Handle, name: &str) -> Result<u64, NativeBuildError> {
    let sym = handle.sym(name).map_err(NativeBuildError::Load)?;
    // Safety: the symbol is an extern "C" fn() -> u64 by construction of the
    // generated source; a mismatched artifact is caught by the checks below.
    let f: extern "C" fn() -> u64 = unsafe { std::mem::transmute(sym) };
    Ok(f())
}

/// Writes the generated crate to a unique directory, builds it offline, loads the
/// produced `cdylib`, and verifies its ABI version, fingerprint and layout.
fn build_and_load(
    tape: &Tape,
    gen: &GeneratedCrate,
    options: &NativeOptions,
) -> Result<Arc<NativeLib>, NativeBuildError> {
    if !cfg!(unix) {
        return Err(NativeBuildError::Platform("native engine requires a unix dynamic loader"));
    }

    // dlopen caches by path, so every build gets a unique directory: two different
    // designs must never reuse a .so path within one process lifetime.
    static BUILD_SEQ: AtomicU64 = AtomicU64::new(0);
    let seq = BUILD_SEQ.fetch_add(1, Ordering::Relaxed);
    let base = options.dir.clone().unwrap_or_else(std::env::temp_dir);
    let dir = base.join(format!(
        "rechisel-native-{}-{}-{seq}",
        sanitize(tape.name()),
        std::process::id()
    ));

    let io = |e: std::io::Error| NativeBuildError::Io(format!("{}: {e}", dir.display()));
    std::fs::create_dir_all(dir.join("src")).map_err(io)?;
    std::fs::write(dir.join("Cargo.toml"), &gen.cargo_toml).map_err(io)?;
    std::fs::write(dir.join("src").join("lib.rs"), &gen.lib_rs).map_err(io)?;

    // Use the invoking cargo when running under `cargo test`/`cargo bench` (the
    // CARGO env var), a plain `cargo` from PATH otherwise. CARGO_TARGET_DIR is
    // forced inside the scratch dir so the build never contends for the enclosing
    // workspace's target/ lock.
    let cargo = std::env::var_os("CARGO").unwrap_or_else(|| "cargo".into());
    let output = Command::new(cargo)
        .args(["build", "--release", "--offline", "--quiet"])
        .current_dir(&dir)
        .env("CARGO_TARGET_DIR", dir.join("target"))
        .env("CARGO_NET_OFFLINE", "true")
        .output()
        .map_err(|e| NativeBuildError::Io(format!("could not spawn cargo: {e}")))?;
    if !output.status.success() {
        let stderr = String::from_utf8_lossy(&output.stderr);
        let tail: String = stderr.chars().rev().take(4000).collect::<String>();
        let stderr = tail.chars().rev().collect();
        if !options.keep_artifacts {
            let _ = std::fs::remove_dir_all(&dir);
        }
        return Err(NativeBuildError::Build { stderr });
    }

    let release = dir.join("target").join("release");
    let so = ["librechisel_native_gen.so", "librechisel_native_gen.dylib"]
        .iter()
        .map(|f| release.join(f))
        .find(|p| p.exists())
        .ok_or_else(|| {
            NativeBuildError::Load(format!("no cdylib artifact under {}", release.display()))
        })?;

    let handle = dl::Handle::open(&so).map_err(NativeBuildError::Load)?;

    let abi = getter(&handle, "rechisel_native_abi")?;
    if abi != NATIVE_ABI_VERSION {
        return Err(NativeBuildError::Load(format!(
            "ABI mismatch: artifact has v{abi}, host expects v{NATIVE_ABI_VERSION}"
        )));
    }
    let fingerprint = getter(&handle, "rechisel_native_fingerprint")?;
    if fingerprint != gen.fingerprint {
        return Err(NativeBuildError::Load(format!(
            "fingerprint mismatch: artifact {fingerprint:#x}, generated {:#x}",
            gen.fingerprint
        )));
    }
    let slots = getter(&handle, "rechisel_native_slots")?;
    let mem_words = getter(&handle, "rechisel_native_mem_words")?;
    if slots != tape.init.len() as u64 || mem_words != tape.mem_init.len() as u64 {
        return Err(NativeBuildError::Load(format!(
            "layout mismatch: artifact {slots} slots/{mem_words} mem words, tape {}/{}",
            tape.init.len(),
            tape.mem_init.len()
        )));
    }

    let eval_sym = handle.sym("rechisel_native_eval").map_err(NativeBuildError::Load)?;
    let step_sym = handle.sym("rechisel_native_step").map_err(NativeBuildError::Load)?;
    let dom_sym = handle.sym("rechisel_native_step_domain").map_err(NativeBuildError::Load)?;
    // Safety: the exported signatures are fixed by the codegen templates; the
    // fingerprint check above proves the artifact was built from this emission.
    let lib = unsafe {
        NativeLib {
            eval: std::mem::transmute::<*mut std::ffi::c_void, EvalFn>(eval_sym),
            step: std::mem::transmute::<*mut std::ffi::c_void, StepFn>(step_sym),
            step_domain: std::mem::transmute::<*mut std::ffi::c_void, StepDomainFn>(dom_sym),
            _handle: handle,
        }
    };

    // On Linux the mapping stays valid after the files are unlinked, so the scratch
    // tree can go as soon as the library is open.
    if !options.keep_artifacts {
        let _ = std::fs::remove_dir_all(&dir);
    }
    Ok(Arc::new(lib))
}

/// Builds (or fetches from the process-wide cache) the native library for a tape.
fn lib_for_tape(tape: &Tape, options: &NativeOptions) -> Result<Arc<NativeLib>, NativeBuildError> {
    let gen = generate_crate(tape).map_err(NativeBuildError::Unsupported)?;
    let mut cache = lib_cache().lock().unwrap_or_else(|poisoned| poisoned.into_inner());
    if let Some(lib) = cache.get(&gen.fingerprint) {
        return Ok(Arc::clone(lib));
    }
    let lib = build_and_load(tape, &gen, options)?;
    cache.insert(gen.fingerprint, Arc::clone(&lib));
    Ok(lib)
}

/// The native engine: executes AOT-compiled straight-line machine code for a tape.
///
/// Construction pays a one-time `cargo build` of the generated crate (cached
/// process-wide per design); every subsequent `step` is a single call into compiled
/// code. Semantics — commit ordering, per-domain stepping, the
/// [`SyncReadBeforeClock`](SimError::SyncReadBeforeClock) taint — match
/// [`CompiledSimulator`] exactly.
///
/// # Example
///
/// ```no_run
/// use rechisel_hcl::prelude::*;
/// use rechisel_sim::{NativeOptions, NativeSimulator, SimEngine};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut m = ModuleBuilder::new("Counter");
/// let en = m.input("en", Type::bool());
/// let out = m.output("out", Type::uint(8));
/// let count = m.reg_init("count", Type::uint(8), &Signal::lit_w(0, 8));
/// m.when(&en, |m| m.connect(&count, &count.add(&Signal::lit_w(1, 8)).bits(7, 0)));
/// m.connect(&out, &count);
/// let netlist = rechisel_firrtl::lower_circuit(&m.into_circuit())?;
///
/// // Generates, builds and loads the design's machine code.
/// let mut sim = NativeSimulator::new(&netlist, &NativeOptions::from_env())?;
/// sim.poke("en", 1)?;
/// sim.step();
/// assert_eq!(sim.peek("out")?, 1);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct NativeSimulator {
    tape: Arc<Tape>,
    lib: Arc<NativeLib>,
    /// Bit values per slot — widths/signedness are baked into the generated code,
    /// so unlike the tape interpreter no per-slot metadata is carried at run time.
    state: Vec<u128>,
    mem: Vec<u128>,
    uncaptured: BTreeSet<String>,
    cycles: u64,
}

impl NativeSimulator {
    /// Compiles `netlist`, emits + builds + loads its native code.
    ///
    /// # Errors
    ///
    /// [`NativeBuildError::Compile`] when the netlist cannot be compiled to a tape
    /// at all; [`NativeBuildError::Unsupported`] for tapes with dynamic shapes
    /// (fall back to [`CompiledSimulator`] — or use [`native_or_fallback`], which
    /// does); other variants for platform/build/load failures.
    pub fn new(netlist: &Netlist, options: &NativeOptions) -> Result<Self, NativeBuildError> {
        let tape = Tape::compile(netlist).map_err(NativeBuildError::Compile)?;
        Self::from_tape(Arc::new(tape), options)
    }

    /// Builds and loads native code for an already-compiled (possibly shared) tape.
    ///
    /// # Errors
    ///
    /// Same conditions as [`NativeSimulator::new`] minus tape compilation.
    pub fn from_tape(tape: Arc<Tape>, options: &NativeOptions) -> Result<Self, NativeBuildError> {
        let lib = lib_for_tape(&tape, options)?;
        let state = tape.init.iter().map(|v| v.bits).collect();
        let mem = tape.mem_init.clone();
        let uncaptured = tape.sync_regs.iter().map(|(name, _)| name.clone()).collect();
        Ok(Self { tape, lib, state, mem, uncaptured, cycles: 0 })
    }

    /// The compiled program this simulator's machine code was generated from.
    pub fn tape(&self) -> &Arc<Tape> {
        &self.tape
    }

    /// Number of clock cycles simulated so far.
    pub fn cycles(&self) -> u64 {
        self.cycles
    }

    fn run_eval(&mut self) {
        // Safety: state/mem are Vecs of exactly the slot/word counts the artifact
        // was layout-checked against at load time.
        unsafe { (self.lib.eval)(self.state.as_mut_ptr(), self.mem.as_ptr()) }
    }

    /// Drives an input port (same validation as [`CompiledSimulator::poke`]).
    ///
    /// # Errors
    ///
    /// [`SimError::NoSuchPort`] / [`SimError::ValueTooWide`].
    pub fn poke(&mut self, name: &str, value: u128) -> Result<(), SimError> {
        let port =
            self.tape.inputs.get(name).ok_or_else(|| SimError::NoSuchPort(name.to_string()))?;
        if value != mask(value, port.width) {
            return Err(SimError::ValueTooWide {
                port: port.name.clone(),
                width: port.width,
                value,
            });
        }
        self.state[port.slot as usize] = value;
        Ok(())
    }

    /// Reads the current value of any signal, with the
    /// [`SyncReadBeforeClock`](SimError::SyncReadBeforeClock) guard.
    ///
    /// # Errors
    ///
    /// [`SimError::NoSuchPort`] / [`SimError::SyncReadBeforeClock`].
    pub fn peek(&self, name: &str) -> Result<u128, SimError> {
        if !self.uncaptured.is_empty() {
            if let Some(sources) = self.tape.sync_sources.get(name) {
                if sources.iter().any(|s| self.uncaptured.contains(s)) {
                    return Err(SimError::SyncReadBeforeClock { signal: name.to_string() });
                }
            }
        }
        self.tape
            .index
            .get(name)
            .map(|slot| self.state[*slot as usize])
            .ok_or_else(|| SimError::NoSuchPort(name.to_string()))
    }

    /// Re-evaluates all combinational logic.
    pub fn eval(&mut self) {
        self.run_eval();
    }

    /// Advances one clock cycle on **every** domain.
    pub fn step(&mut self) {
        // Safety: see run_eval; the generated step also writes mem.
        unsafe { (self.lib.step)(self.state.as_mut_ptr(), self.mem.as_mut_ptr()) }
        self.uncaptured.clear();
        self.cycles += 1;
    }

    /// Edges one clock domain, committing only state tagged with it.
    ///
    /// # Errors
    ///
    /// [`SimError::NoSuchClock`] for unknown domains.
    pub fn step_clock(&mut self, domain: &str) -> Result<(), SimError> {
        let idx = self
            .tape
            .domains
            .iter()
            .position(|d| d == domain)
            .ok_or_else(|| SimError::NoSuchClock(domain.to_string()))?;
        // Safety: see run_eval.
        unsafe {
            (self.lib.step_domain)(self.state.as_mut_ptr(), self.mem.as_mut_ptr(), idx as u32)
        }
        if !self.uncaptured.is_empty() {
            let sync_regs = &self.tape.sync_regs;
            let d = idx as u32;
            self.uncaptured
                .retain(|name| !sync_regs.iter().any(|(reg, rd)| reg == name && *rd == d));
        }
        self.cycles += 1;
        Ok(())
    }

    /// Edges several clock domains **simultaneously** (one edge event, one cycle;
    /// see `SimEngine::step_clocks`).
    ///
    /// The generated machine code has entry points for the all-domain edge and
    /// single-domain edges only, so a genuinely multi-domain subset edge is executed
    /// through the shared tape interpreter on this simulator's state — bit-identical
    /// by construction (both run the same tape), at tape-interpreter speed for that
    /// one edge. Single-domain sets take the native path.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::NoSuchClock`] when `domains` is empty or names a domain
    /// that is not a clock domain of the design.
    pub fn step_clocks(&mut self, domains: &[&str]) -> Result<(), SimError> {
        if domains.is_empty() {
            return Err(SimError::NoSuchClock("(empty domain set)".to_string()));
        }
        let mut indices: Vec<u32> = Vec::with_capacity(domains.len());
        for domain in domains {
            let idx = self
                .tape
                .domains
                .iter()
                .position(|d| d == *domain)
                .ok_or_else(|| SimError::NoSuchClock((*domain).to_string()))?
                as u32;
            if !indices.contains(&idx) {
                indices.push(idx);
            }
        }
        if let [idx] = indices[..] {
            let domain = self.tape.domains[idx as usize].clone();
            return self.step_clock(&domain);
        }
        let mut scratch = CompiledSimulator::from_tape(Arc::clone(&self.tape));
        scratch.load_raw(&self.state, &self.mem, &self.uncaptured);
        scratch.step_clocks(domains)?;
        scratch.store_raw(&mut self.state, &mut self.mem, &mut self.uncaptured);
        self.cycles += 1;
        Ok(())
    }

    /// The design's clock domains, in first-appearance order.
    pub fn clock_domains(&self) -> &[String] {
        &self.tape.domains
    }

    /// Reads all output ports in port order (raw values, no taint guard).
    pub fn outputs(&self) -> Vec<(String, u128)> {
        self.tape
            .outputs
            .iter()
            .map(|(name, slot)| (name.clone(), self.state[*slot as usize]))
            .collect()
    }

    fn tape_mem(&self, mem: &str) -> Result<(u32, u32, u32), SimError> {
        self.tape
            .mems
            .iter()
            .find(|m| m.name == mem)
            .map(|m| (m.base, m.depth, m.width))
            .ok_or_else(|| SimError::NoSuchMem(mem.to_string()))
    }

    /// Reads one memory word.
    ///
    /// # Errors
    ///
    /// [`SimError::NoSuchMem`] / [`SimError::MemAddrOutOfRange`].
    pub fn peek_mem(&self, mem: &str, addr: u128) -> Result<u128, SimError> {
        let (base, depth, _) = self.tape_mem(mem)?;
        if addr >= u128::from(depth) {
            return Err(SimError::MemAddrOutOfRange {
                mem: mem.to_string(),
                depth: depth as usize,
                addr,
            });
        }
        Ok(self.mem[(base + addr as u32) as usize])
    }

    /// Overwrites one memory word, validating address and value.
    ///
    /// # Errors
    ///
    /// [`SimError::NoSuchMem`] / [`SimError::MemAddrOutOfRange`] /
    /// [`SimError::MemValueTooWide`].
    pub fn poke_mem(&mut self, mem: &str, addr: u128, value: u128) -> Result<(), SimError> {
        let (base, depth, width) = self.tape_mem(mem)?;
        if addr >= u128::from(depth) {
            return Err(SimError::MemAddrOutOfRange {
                mem: mem.to_string(),
                depth: depth as usize,
                addr,
            });
        }
        if value != mask(value, width) {
            return Err(SimError::MemValueTooWide { mem: mem.to_string(), width, value });
        }
        self.mem[(base + addr as u32) as usize] = value;
        Ok(())
    }
}

impl SimEngine for NativeSimulator {
    fn poke(&mut self, name: &str, value: u128) -> Result<(), SimError> {
        NativeSimulator::poke(self, name, value)
    }

    fn peek(&self, name: &str) -> Result<u128, SimError> {
        NativeSimulator::peek(self, name)
    }

    fn eval(&mut self) -> Result<(), SimError> {
        NativeSimulator::eval(self);
        Ok(())
    }

    fn step(&mut self) -> Result<(), SimError> {
        NativeSimulator::step(self);
        Ok(())
    }

    fn step_clock(&mut self, domain: &str) -> Result<(), SimError> {
        NativeSimulator::step_clock(self, domain)
    }

    fn step_clocks(&mut self, domains: &[&str]) -> Result<(), SimError> {
        NativeSimulator::step_clocks(self, domains)
    }

    fn clock_domains(&self) -> Vec<String> {
        self.tape.domains.clone()
    }

    fn cycles(&self) -> u64 {
        NativeSimulator::cycles(self)
    }

    fn outputs(&self) -> Vec<(String, u128)> {
        NativeSimulator::outputs(self)
    }

    fn has_reset(&self) -> bool {
        self.tape.has_reset
    }

    fn peek_mem(&self, mem: &str, addr: u128) -> Result<u128, SimError> {
        NativeSimulator::peek_mem(self, mem, addr)
    }

    fn poke_mem(&mut self, mem: &str, addr: u128, value: u128) -> Result<(), SimError> {
        NativeSimulator::poke_mem(self, mem, addr, value)
    }

    fn mem_names(&self) -> Vec<String> {
        self.tape.mems.iter().map(|m| m.name.clone()).collect()
    }

    fn mem_depth(&self, mem: &str) -> Option<usize> {
        self.tape.mems.iter().find(|m| m.name == mem).map(|m| m.depth as usize)
    }
}

/// Notice that the native engine fell back to the compiled tape, and why.
#[derive(Debug)]
pub struct NativeFallback {
    /// The recoverable reason for the fallback (see
    /// [`NativeBuildError::recoverable`]).
    pub reason: NativeBuildError,
}

impl std::fmt::Display for NativeFallback {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "native engine fell back to the compiled tape: {}", self.reason)
    }
}

/// Builds a native simulator, degrading gracefully to [`CompiledSimulator`] when the
/// design (or platform) is outside the codegen's reach.
///
/// This is the constructor behind [`EngineKind::Native`](crate::EngineKind):
/// recoverable build errors — dynamic shapes, no dynamic loader — return the
/// compiled engine plus a typed [`NativeFallback`] notice (also warned to stderr
/// once per process); environmental failures (I/O, cargo, dlopen) surface as
/// [`SimError::NativeBuild`].
///
/// # Errors
///
/// [`SimError::Eval`] when the netlist cannot be compiled to a tape at all;
/// [`SimError::NativeBuild`] for non-recoverable AOT failures.
pub fn native_or_fallback(
    netlist: &Netlist,
) -> Result<(Box<dyn SimEngine>, Option<NativeFallback>), SimError> {
    let tape = Arc::new(Tape::compile(netlist)?);
    match NativeSimulator::from_tape(Arc::clone(&tape), &NativeOptions::from_env()) {
        Ok(sim) => Ok((Box::new(sim), None)),
        Err(reason) if reason.recoverable() => {
            static WARNED: AtomicBool = AtomicBool::new(false);
            if !WARNED.swap(true, Ordering::Relaxed) {
                eprintln!(
                    "rechisel-sim: native engine falling back to compiled tape: {reason} \
                     (warned once per process)"
                );
            }
            let sim = CompiledSimulator::from_tape(tape);
            Ok((Box::new(sim), Some(NativeFallback { reason })))
        }
        Err(e) => Err(SimError::NativeBuild(e.to_string())),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rechisel_firrtl::lower_circuit;
    use rechisel_hcl::prelude::*;

    fn counter_netlist() -> Netlist {
        let mut m = ModuleBuilder::new("Counter");
        let en = m.input("en", Type::bool());
        let out = m.output("out", Type::uint(8));
        let count = m.reg_init("count", Type::uint(8), &Signal::lit_w(0, 8));
        m.when(&en, |m| m.connect(&count, &count.add(&Signal::lit_w(1, 8)).bits(7, 0)));
        m.connect(&out, &count);
        lower_circuit(&m.into_circuit()).unwrap()
    }

    #[test]
    fn native_counter_matches_compiled() {
        let netlist = counter_netlist();
        let mut native = NativeSimulator::new(&netlist, &NativeOptions::from_env()).unwrap();
        let mut compiled = CompiledSimulator::new(&netlist).unwrap();
        for sim in [&mut native as &mut dyn SimEngine, &mut compiled as &mut dyn SimEngine] {
            sim.reset(2).unwrap();
            sim.poke("en", 1).unwrap();
            sim.step_n(5).unwrap();
        }
        assert_eq!(native.peek("out").unwrap(), 5);
        assert_eq!(native.peek("out").unwrap(), compiled.peek("out").unwrap());
        assert_eq!(native.cycles(), compiled.cycles());
        assert_eq!(SimEngine::outputs(&native), SimEngine::outputs(&compiled));
    }

    #[test]
    fn builds_are_cached_by_fingerprint() {
        let netlist = counter_netlist();
        let a = NativeSimulator::new(&netlist, &NativeOptions::from_env()).unwrap();
        let b = NativeSimulator::new(&netlist, &NativeOptions::from_env()).unwrap();
        assert!(Arc::ptr_eq(&a.lib, &b.lib), "same design must reuse the cached build");
    }

    #[test]
    fn poke_and_peek_validate_like_the_compiled_engine() {
        let netlist = counter_netlist();
        let mut sim = NativeSimulator::new(&netlist, &NativeOptions::from_env()).unwrap();
        assert!(matches!(sim.poke("nope", 1), Err(SimError::NoSuchPort(_))));
        assert!(matches!(sim.poke("en", 2), Err(SimError::ValueTooWide { .. })));
        assert!(matches!(sim.peek("nope"), Err(SimError::NoSuchPort(_))));
        assert!(matches!(sim.step_clock("aux"), Err(SimError::NoSuchClock(_))));
    }

    #[test]
    fn dynamic_shapes_fall_back_to_the_compiled_engine() {
        let mut m = ModuleBuilder::new("Dyn");
        let a = m.input("a", Type::uint(8));
        let sh = m.input("sh", Type::uint(3));
        let out = m.output("out", Type::uint(16));
        m.connect(&out, &a.dshl(&sh).bits(15, 0));
        let netlist = lower_circuit(&m.into_circuit()).unwrap();

        // Direct construction reports the typed unsupported error...
        let err = NativeSimulator::new(&netlist, &NativeOptions::from_env()).unwrap_err();
        assert!(matches!(err, NativeBuildError::Unsupported(CodegenError::DynamicShape { .. })));
        assert!(err.recoverable());

        // ...and the fallback constructor degrades to a working compiled engine.
        let (mut sim, fallback) = native_or_fallback(&netlist).unwrap();
        let fallback = fallback.expect("dynamic shape must report a fallback");
        assert!(matches!(fallback.reason, NativeBuildError::Unsupported(_)));
        sim.poke("a", 0b1).unwrap();
        sim.poke("sh", 3).unwrap();
        sim.eval().unwrap();
        assert_eq!(sim.peek("out").unwrap(), 0b1000);
    }

    #[test]
    fn native_or_fallback_uses_native_when_supported() {
        let (mut sim, fallback) = native_or_fallback(&counter_netlist()).unwrap();
        assert!(fallback.is_none());
        sim.poke("en", 1).unwrap();
        sim.step_n(3).unwrap();
        assert_eq!(sim.peek("out").unwrap(), 3);
    }

    #[test]
    fn options_from_env_defaults_are_quiet() {
        // Not asserting on the env-sensitive fields (the CI job sets them); just
        // pin the default shape.
        let opts = NativeOptions::default();
        assert!(opts.dir.is_none());
        assert!(!opts.keep_artifacts);
    }
}
