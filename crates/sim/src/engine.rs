//! The execution-engine seam: one trait, three implementations.
//!
//! [`SimEngine`] abstracts over *how* a lowered netlist is executed, so every consumer
//! of simulation — the testbench runner, the functional tester, the benchmark sweeps —
//! is engine-agnostic:
//!
//! * [`Simulator`] (selected by [`EngineKind::Interp`]) walks the
//!   expression trees of the netlist on every evaluation. Zero startup cost, ideal for
//!   one-shot evaluation and as the semantic reference.
//! * [`CompiledSimulator`] (selected by
//!   [`EngineKind::Compiled`]) levelizes the netlist once into a flat instruction
//!   [`Tape`](crate::Tape) — slot-indexed state, pre-resolved operand indices,
//!   pre-pooled constants, a register commit list — and then executes cycles with no
//!   hashing or allocation. Sweeps that simulate the same design for thousands of
//!   cycles amortize the one-time compile many times over.
//!
//! * [`BatchedSimulator`] (selected by [`EngineKind::Batched`]) executes the same
//!   tape over N independent stimulus lanes in lockstep (structure-of-arrays state);
//!   through this seam it runs as a 1-lane batch, and the dedicated lane API unlocks
//!   the batched throughput for sweep workloads.
//!
//! * [`NativeSimulator`](crate::NativeSimulator) (selected by [`EngineKind::Native`])
//!   goes one step further than the tape: the levelized program is emitted as
//!   straight-line Rust source, AOT-compiled with `cargo build`, and `dlopen`ed —
//!   every step is a single call into machine code with the slot layout and commit
//!   lists baked in. Designs the codegen cannot express fall back to the compiled
//!   tape (see [`crate::native_or_fallback`]).
//!
//! All engines execute the *same* operator kernel ([`crate::eval::apply_prim`]) and
//! are pinned cycle-for-cycle identical by the differential fuzz suite in
//! `rechisel-benchsuite`.

use rechisel_firrtl::lower::Netlist;

use crate::batched::BatchedSimulator;
use crate::compiled::CompiledSimulator;
use crate::simulator::{SimError, Simulator};

/// A cycle-accurate execution engine over a lowered netlist.
///
/// The trait mirrors the poke/peek/eval/step surface of [`Simulator`]; `step_n` and
/// `reset` are provided in terms of the required methods.
///
/// # Example
///
/// ```
/// use rechisel_hcl::prelude::*;
/// use rechisel_sim::{EngineKind, SimEngine};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut m = ModuleBuilder::new("AddOne");
/// let a = m.input("a", Type::uint(8));
/// let out = m.output("out", Type::uint(8));
/// m.connect(&out, &a.add(&Signal::lit_w(1, 8)).bits(7, 0));
/// let netlist = rechisel_firrtl::lower_circuit(&m.into_circuit())?;
///
/// // The same driver code works against either engine.
/// for kind in [EngineKind::Interp, EngineKind::Compiled] {
///     let mut sim = kind.simulator(&netlist)?;
///     sim.poke("a", 41)?;
///     sim.eval()?;
///     assert_eq!(sim.peek("out")?, 42);
/// }
/// # Ok(())
/// # }
/// ```
pub trait SimEngine {
    /// Drives an input port.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::NoSuchPort`] if `name` is not an input port and
    /// [`SimError::ValueTooWide`] if `value` does not fit in the port's width.
    fn poke(&mut self, name: &str, value: u128) -> Result<(), SimError>;

    /// Reads the current value of any signal (port, wire or register).
    ///
    /// # Errors
    ///
    /// Returns [`SimError::NoSuchPort`] if the signal does not exist.
    fn peek(&self, name: &str) -> Result<u128, SimError>;

    /// Re-evaluates all combinational logic with the current inputs and register state.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Eval`] when the netlist is structurally broken (dangling
    /// references, non-ground expressions).
    fn eval(&mut self) -> Result<(), SimError>;

    /// Advances one clock cycle on **every** domain: evaluate, compute register
    /// next-states (applying synchronous reset), commit them simultaneously,
    /// re-evaluate. For a single-clock design this is the only stepping primitive
    /// needed; for a multi-clock design it models all clocks edging at the same
    /// instant (the lockstep schedule, bit-identical to the pre-`step_clock`
    /// behaviour).
    ///
    /// # Errors
    ///
    /// Same conditions as [`eval`](Self::eval).
    fn step(&mut self) -> Result<(), SimError>;

    /// Edges **one** clock domain: evaluate, compute next-states, but commit only the
    /// registers and memory write ports clocked by `domain`, then re-evaluate. State
    /// in other domains is untouched — their registers keep pre-edge values, exactly
    /// like the unclocked `always` blocks in the emitted Verilog.
    ///
    /// Domain names are mangled clock nets, e.g. `"clock"` for the implicit clock of
    /// a `Module` or `"clk_b"` for a `with_clock` scope (see
    /// [`clock_domains`](Self::clock_domains)). Each call counts as one cycle in
    /// [`cycles`](Self::cycles).
    ///
    /// # Errors
    ///
    /// Returns [`SimError::NoSuchClock`] when `domain` is not a clock domain of the
    /// design; otherwise the same conditions as [`eval`](Self::eval).
    fn step_clock(&mut self, domain: &str) -> Result<(), SimError>;

    /// Edges **several** clock domains simultaneously: one edge event, one cycle,
    /// with every listed domain's registers and memory write ports staged against the
    /// same pre-edge state and committed together. This is the coincident-edge
    /// primitive: two domains whose edges land on the same timestamp must be stepped
    /// through one `step_clocks(&[a, b])` call — stepping them back to back instead
    /// lets the second domain observe the first domain's *post*-edge values, which is
    /// observably different whenever state crosses domains (e.g. a cross-domain
    /// register exchange swaps on a simultaneous edge but duplicates on back-to-back
    /// edges).
    ///
    /// `step_clocks(&[d])` is equivalent to [`step_clock(d)`](Self::step_clock), and
    /// listing every domain is equivalent to [`step`](Self::step). Duplicate names
    /// are allowed and redundant. Each call counts as **one** cycle in
    /// [`cycles`](Self::cycles).
    ///
    /// # Errors
    ///
    /// Returns [`SimError::NoSuchClock`] when `domains` is empty or names a domain
    /// that is not a clock domain of the design; otherwise the same conditions as
    /// [`eval`](Self::eval).
    fn step_clocks(&mut self, domains: &[&str]) -> Result<(), SimError>;

    /// The design's clock domains, in first-appearance order (register declaration
    /// order, then memory write ports). Empty for purely combinational designs.
    fn clock_domains(&self) -> Vec<String>;

    /// Number of clock cycles simulated so far.
    fn cycles(&self) -> u64;

    /// Reads all output ports, in port order.
    ///
    /// Unlike [`peek`](Self::peek), this reports **raw** signal values without the
    /// `SyncReadBeforeClock` guard: before the first clock edge an output fed by a
    /// sequential memory read reads as its zero-initialised register value. Use
    /// `peek` when the distinction matters.
    fn outputs(&self) -> Vec<(String, u128)>;

    /// True when the design has a `reset` input port.
    fn has_reset(&self) -> bool;

    /// Reads the current contents of one memory word.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::NoSuchMem`] for unknown memories (the default for designs
    /// without memories) and [`SimError::MemAddrOutOfRange`] for addresses outside
    /// `0..depth`.
    fn peek_mem(&self, mem: &str, _addr: u128) -> Result<u128, SimError> {
        Err(SimError::NoSuchMem(mem.to_string()))
    }

    /// Overwrites one memory word, validating the address and value first.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::NoSuchMem`] for unknown memories,
    /// [`SimError::MemAddrOutOfRange`] for addresses outside `0..depth`, and
    /// [`SimError::MemValueTooWide`] when the value has bits above the word width —
    /// out-of-range pokes are rejected on both engines, never silently masked.
    fn poke_mem(&mut self, mem: &str, _addr: u128, _value: u128) -> Result<(), SimError> {
        Err(SimError::NoSuchMem(mem.to_string()))
    }

    /// Names of the design's memories, in declaration order.
    fn mem_names(&self) -> Vec<String> {
        Vec::new()
    }

    /// Word depth of one memory, if it exists.
    fn mem_depth(&self, _mem: &str) -> Option<usize> {
        None
    }

    /// Advances `n` clock cycles.
    ///
    /// # Errors
    ///
    /// Same conditions as [`step`](Self::step).
    fn step_n(&mut self, n: u32) -> Result<(), SimError> {
        for _ in 0..n {
            self.step()?;
        }
        Ok(())
    }

    /// Asserts the `reset` input (when present) for `cycles` cycles, then deasserts it.
    ///
    /// Each cycle is a full [`step`](Self::step), so the reset pulse edges **every**
    /// clock domain — registers with a synchronous reset take their init value in all
    /// domains, keeping reset semantics identical across engines under per-domain
    /// stepping. Memory init images are **not** restored: initialization applies at
    /// time zero only.
    ///
    /// # Errors
    ///
    /// Same conditions as [`step`](Self::step).
    fn reset(&mut self, cycles: u32) -> Result<(), SimError> {
        if self.has_reset() {
            self.poke("reset", 1)?;
            self.step_n(cycles)?;
            self.poke("reset", 0)?;
            self.eval()?;
        }
        Ok(())
    }

    /// Asserts the `reset` input (when present) for `cycles` cycles, edging **only**
    /// `domain` — registers and write ports in other clock domains keep their state,
    /// so one side of a CDC design can be reset independently while the other keeps
    /// running. Registers in `domain` whose reset net is a `with_reset` override (see
    /// `ModuleBuilder::with_clock_and_reset`) only take their init value when their
    /// own reset net is asserted.
    ///
    /// [`reset`](Self::reset) remains the all-domain pulse.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::NoSuchClock`] when `domain` is not a clock domain of the
    /// design (even for designs without a reset port — the domain name is validated
    /// first); otherwise the same conditions as [`step_clock`](Self::step_clock).
    fn reset_domain(&mut self, domain: &str, cycles: u32) -> Result<(), SimError> {
        if !self.clock_domains().iter().any(|d| d == domain) {
            return Err(SimError::NoSuchClock(domain.to_string()));
        }
        if self.has_reset() {
            self.poke("reset", 1)?;
            for _ in 0..cycles {
                self.step_clock(domain)?;
            }
            self.poke("reset", 0)?;
            self.eval()?;
        }
        Ok(())
    }
}

/// Which [`SimEngine`] implementation to instantiate.
///
/// The default is [`EngineKind::Compiled`]: benchmark sweeps simulate each reference
/// design for many points × cycles, which is exactly the regime where the one-time
/// tape compilation pays for itself. Pick [`EngineKind::Interp`] for one-shot
/// evaluations or when debugging the compiled engine against the reference semantics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum EngineKind {
    /// Tree-walking interpreter ([`Simulator`]).
    Interp,
    /// Levelized instruction-tape engine ([`CompiledSimulator`]).
    #[default]
    Compiled,
    /// Lane-batched tape engine ([`BatchedSimulator`]); a 1-lane batch through this
    /// seam, with the full lane API available on the concrete type.
    Batched,
    /// AOT-compiled straight-line machine code
    /// ([`NativeSimulator`](crate::NativeSimulator)); pays a one-time `cargo build`
    /// per design (cached process-wide), then steps with no interpretation at all.
    /// Falls back to [`CompiledSimulator`] for designs outside the codegen's reach.
    Native,
}

impl EngineKind {
    /// A short display name (`"interp"` / `"compiled"` / `"batched"` / `"native"`).
    pub fn name(self) -> &'static str {
        match self {
            EngineKind::Interp => "interp",
            EngineKind::Compiled => "compiled",
            EngineKind::Batched => "batched",
            EngineKind::Native => "native",
        }
    }

    /// Instantiates the engine for a netlist.
    ///
    /// # Errors
    ///
    /// [`EngineKind::Compiled`] and [`EngineKind::Batched`] return [`SimError::Eval`]
    /// when the netlist cannot be compiled to a tape (dangling references or
    /// non-ground expressions — conditions the interpreter would only report at
    /// evaluation time). [`EngineKind::Native`] additionally returns
    /// [`SimError::NativeBuild`] when the AOT build or load fails for environmental
    /// reasons; unsupported tape shapes fall back to the compiled engine silently
    /// here (use [`crate::native_or_fallback`] directly to observe the fallback).
    pub fn simulator(self, netlist: &Netlist) -> Result<Box<dyn SimEngine>, SimError> {
        match self {
            EngineKind::Interp => Ok(Box::new(Simulator::new(netlist.clone()))),
            EngineKind::Compiled => Ok(Box::new(CompiledSimulator::new(netlist)?)),
            EngineKind::Batched => Ok(Box::new(BatchedSimulator::new(netlist, 1)?)),
            EngineKind::Native => crate::native::native_or_fallback(netlist).map(|(sim, _)| sim),
        }
    }
}

impl std::fmt::Display for EngineKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rechisel_firrtl::lower_circuit;
    use rechisel_hcl::prelude::*;

    fn counter() -> Netlist {
        let mut m = ModuleBuilder::new("Counter");
        let en = m.input("en", Type::bool());
        let out = m.output("out", Type::uint(8));
        let count = m.reg_init("count", Type::uint(8), &Signal::lit_w(0, 8));
        m.when(&en, |m| {
            let next = count.add(&Signal::lit_w(1, 8)).bits(7, 0);
            m.connect(&count, &next);
        });
        m.connect(&out, &count);
        lower_circuit(&m.into_circuit()).unwrap()
    }

    #[test]
    fn both_kinds_drive_the_same_trait_object_protocol() {
        let kinds =
            [EngineKind::Interp, EngineKind::Compiled, EngineKind::Batched, EngineKind::Native];
        for kind in kinds {
            let mut sim = kind.simulator(&counter()).unwrap();
            assert!(sim.has_reset());
            sim.reset(2).unwrap();
            sim.poke("en", 1).unwrap();
            sim.step_n(5).unwrap();
            assert_eq!(sim.peek("out").unwrap(), 5, "engine {kind}");
            assert_eq!(sim.cycles(), 7);
            assert_eq!(sim.outputs(), vec![("out".to_string(), 5)]);
        }
    }

    #[test]
    fn reset_domain_pulses_only_that_domain() {
        // Two free-running counters on independent clocks, one shared reset net.
        let mut m = ModuleBuilder::raw("PerDomainReset");
        let clk_a = m.input("clk_a", Type::Clock);
        let clk_b = m.input("clk_b", Type::Clock);
        let _reset = m.input("reset", Type::bool());
        let oa = m.output("oa", Type::uint(8));
        let ob = m.output("ob", Type::uint(8));
        m.with_clock(&clk_a, |m| {
            let c = m.reg_init("a", Type::uint(8), &Signal::lit_w(0, 8));
            m.connect(&c, &c.add(&Signal::lit_w(1, 8)).bits(7, 0));
            m.connect(&oa, &c);
        });
        m.with_clock(&clk_b, |m| {
            let c = m.reg_init("b", Type::uint(8), &Signal::lit_w(0, 8));
            m.connect(&c, &c.add(&Signal::lit_w(1, 8)).bits(7, 0));
            m.connect(&ob, &c);
        });
        let netlist = lower_circuit(&m.into_circuit()).unwrap();
        let kinds =
            [EngineKind::Interp, EngineKind::Compiled, EngineKind::Batched, EngineKind::Native];
        for kind in kinds {
            let mut sim = kind.simulator(&netlist).unwrap();
            sim.step_n(3).unwrap();
            assert_eq!(sim.peek("oa").unwrap(), 3, "engine {kind}");
            assert_eq!(sim.peek("ob").unwrap(), 3, "engine {kind}");
            // Resetting only clk_a's side: `a` takes its init value while `b` keeps
            // both its value and its standstill (its domain never edges).
            sim.reset_domain("clk_a", 2).unwrap();
            assert_eq!(sim.peek("oa").unwrap(), 0, "engine {kind}");
            assert_eq!(sim.peek("ob").unwrap(), 3, "engine {kind}");
            assert_eq!(sim.cycles(), 5, "engine {kind}");
            // The all-domain pulse still resets everything.
            sim.reset(1).unwrap();
            assert_eq!(sim.peek("oa").unwrap(), 0, "engine {kind}");
            assert_eq!(sim.peek("ob").unwrap(), 0, "engine {kind}");
            // Unknown domains are rejected up front.
            assert!(matches!(
                sim.reset_domain("ghost", 1),
                Err(SimError::NoSuchClock(d)) if d == "ghost"
            ));
        }
    }

    #[test]
    fn step_clocks_validates_and_merges_domains() {
        let netlist = {
            let mut m = ModuleBuilder::raw("Two");
            let clk_a = m.input("clk_a", Type::Clock);
            let clk_b = m.input("clk_b", Type::Clock);
            let o = m.output("o", Type::uint(8));
            let mut tmp = None;
            m.with_clock(&clk_a, |m| {
                let c = m.reg("a", Type::uint(8));
                m.connect(&c, &c.add(&Signal::lit_w(1, 8)).bits(7, 0));
                tmp = Some(c);
            });
            let a = tmp.unwrap();
            m.with_clock(&clk_b, |m| {
                let c = m.reg("b", Type::uint(8));
                m.connect(&c, &a);
                m.connect(&o, &c);
            });
            lower_circuit(&m.into_circuit()).unwrap()
        };
        let kinds =
            [EngineKind::Interp, EngineKind::Compiled, EngineKind::Batched, EngineKind::Native];
        for kind in kinds {
            let mut sim = kind.simulator(&netlist).unwrap();
            // One simultaneous edge: `b` captures a's PRE-edge value (0), `a` -> 1.
            sim.step_clocks(&["clk_a", "clk_b"]).unwrap();
            assert_eq!(sim.peek("a").unwrap(), 1, "engine {kind}");
            assert_eq!(sim.peek("o").unwrap(), 0, "engine {kind}");
            assert_eq!(sim.cycles(), 1, "engine {kind}");
            // Duplicates collapse; a singleton set equals step_clock.
            sim.step_clocks(&["clk_a", "clk_a"]).unwrap();
            assert_eq!(sim.peek("a").unwrap(), 2, "engine {kind}");
            assert_eq!(sim.peek("o").unwrap(), 0, "engine {kind}");
            // Empty and unknown sets error without stepping.
            assert!(matches!(sim.step_clocks(&[]), Err(SimError::NoSuchClock(_))));
            assert!(matches!(
                sim.step_clocks(&["clk_a", "ghost"]),
                Err(SimError::NoSuchClock(d)) if d == "ghost"
            ));
            assert_eq!(sim.cycles(), 2, "engine {kind}");
        }
    }

    #[test]
    fn kind_names_and_default() {
        assert_eq!(EngineKind::default(), EngineKind::Compiled);
        assert_eq!(EngineKind::Interp.name(), "interp");
        assert_eq!(EngineKind::Compiled.to_string(), "compiled");
        assert_eq!(EngineKind::Batched.to_string(), "batched");
        assert_eq!(EngineKind::Native.to_string(), "native");
    }
}
