//! Timestamped per-domain edge schedules for multi-clock simulation.
//!
//! [`SimEngine::step_clock`] edges one clock domain at a time; driving a multi-clock
//! design therefore needs a *schedule* deciding which domain edges next. [`EdgeQueue`]
//! is that scheduler: a queue of `(time, domain)` events, built either from periodic
//! clocks ([`EdgeQueue::periodic`] — e.g. a 3:1 ratio between two domains) or from an
//! arbitrary interleaving ([`EdgeQueue::from_events`], handy for fuzzing random CDC
//! timings).
//!
//! Ties are **simultaneous**: events at the same timestamp are grouped into one
//! multi-domain edge and fired through a single [`SimEngine::step_clocks`] call, so
//! every tied domain stages against the same pre-edge state — exactly what aligned
//! clock edges mean in hardware, and observably different from two back-to-back
//! `step_clock` calls whenever state crosses the tied domains (a cross-domain
//! register exchange swaps on the simultaneous edge but duplicates back-to-back).
//! Within a tie, duplicate domain names collapse; [`EdgeQueue::events`] still
//! reports the individual `(time, domain)` events in deterministic order (domains
//! as added for [`EdgeQueue::periodic`], as pushed for explicit queues).
//!
//! # Example
//!
//! ```
//! use rechisel_hcl::prelude::*;
//! use rechisel_sim::{EdgeQueue, EngineKind};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // A two-domain design: `fast` counts on clk_f, `slow` counts on clk_s.
//! let mut m = ModuleBuilder::raw("TwoClocks");
//! let clk_f = m.input("clk_f", Type::Clock);
//! let clk_s = m.input("clk_s", Type::Clock);
//! let f = m.output("f", Type::uint(8));
//! let s = m.output("s", Type::uint(8));
//! m.with_clock(&clk_f, |m| {
//!     let c = m.reg("fast", Type::uint(8));
//!     m.connect(&c, &c.add(&Signal::lit_w(1, 8)).bits(7, 0));
//!     m.connect(&f, &c);
//! });
//! m.with_clock(&clk_s, |m| {
//!     let c = m.reg("slow", Type::uint(8));
//!     m.connect(&c, &c.add(&Signal::lit_w(1, 8)).bits(7, 0));
//!     m.connect(&s, &c);
//! });
//! let netlist = rechisel_firrtl::lower_circuit(&m.into_circuit())?;
//! let mut sim = EngineKind::Compiled.simulator(&netlist)?;
//!
//! // clk_f every 2 time units, clk_s every 6: a 3:1 edge ratio.
//! let queue = EdgeQueue::periodic(&[("clk_f", 2), ("clk_s", 6)], 12);
//! queue.run(sim.as_mut())?;
//! assert_eq!(sim.peek("f")?, 6); // edges at t = 2, 4, 6, 8, 10, 12
//! assert_eq!(sim.peek("s")?, 2); // edges at t = 6, 12
//! # Ok(())
//! # }
//! ```

use crate::engine::SimEngine;
use crate::simulator::SimError;

/// One scheduled clock edge: the domain to step and the virtual time it fires at.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Edge {
    /// Virtual timestamp (arbitrary units; only the ordering matters).
    pub time: u64,
    /// Clock-domain name, as reported by [`SimEngine::clock_domains`].
    pub domain: String,
}

/// An ordered queue of per-domain clock edges (see the module docs).
#[derive(Debug, Clone, Default)]
pub struct EdgeQueue {
    /// Events sorted by time; same-time events keep their insertion order.
    events: Vec<Edge>,
}

impl EdgeQueue {
    /// An empty queue.
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds a queue from periodic clocks: each `(domain, period)` fires at
    /// `period, 2*period, ...` up to and including `horizon`. Same-time events fire
    /// in the order the domains are listed. Zero periods are ignored (a zero-period
    /// clock would fire infinitely often).
    pub fn periodic(clocks: &[(&str, u64)], horizon: u64) -> Self {
        let mut queue = Self::new();
        for t in 1..=horizon {
            for (domain, period) in clocks {
                if *period > 0 && t % *period == 0 {
                    queue.push(t, domain);
                }
            }
        }
        queue
    }

    /// Builds a queue from explicit `(time, domain)` events. The events are sorted
    /// by time with a stable sort, so same-time events keep the given order.
    pub fn from_events(events: impl IntoIterator<Item = (u64, String)>) -> Self {
        let mut events: Vec<Edge> =
            events.into_iter().map(|(time, domain)| Edge { time, domain }).collect();
        events.sort_by_key(|e| e.time);
        Self { events }
    }

    /// Appends one edge, keeping the queue sorted (stable: ties go after existing
    /// events at the same time).
    pub fn push(&mut self, time: u64, domain: &str) {
        let at = self.events.partition_point(|e| e.time <= time);
        self.events.insert(at, Edge { time, domain: domain.to_string() });
    }

    /// The scheduled edges, in firing order.
    pub fn events(&self) -> &[Edge] {
        &self.events
    }

    /// Number of scheduled edges.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True when no edges are scheduled.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Drives `sim` through every scheduled edge in time order. Events sharing a
    /// timestamp fire as **one** simultaneous multi-domain edge
    /// ([`step_clocks`](SimEngine::step_clocks), one cycle); lone events fire as a
    /// plain [`step_clock`](SimEngine::step_clock).
    ///
    /// # Errors
    ///
    /// Returns [`SimError::NoSuchClock`] when an event names a domain the design
    /// does not have; the simulator is left at the last successfully applied edge.
    pub fn run(&self, sim: &mut dyn SimEngine) -> Result<(), SimError> {
        let mut at = 0;
        while at < self.events.len() {
            let time = self.events[at].time;
            let end = at + self.events[at..].partition_point(|e| e.time == time);
            let mut domains: Vec<&str> = Vec::with_capacity(end - at);
            for edge in &self.events[at..end] {
                if !domains.contains(&edge.domain.as_str()) {
                    domains.push(&edge.domain);
                }
            }
            match domains[..] {
                [domain] => sim.step_clock(domain)?,
                _ => sim.step_clocks(&domains)?,
            }
            at = end;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rechisel_firrtl::lower_circuit;
    use rechisel_hcl::prelude::*;

    #[test]
    fn periodic_schedules_interleave_by_time() {
        let q = EdgeQueue::periodic(&[("a", 2), ("b", 3)], 6);
        let got: Vec<(u64, &str)> =
            q.events().iter().map(|e| (e.time, e.domain.as_str())).collect();
        assert_eq!(got, vec![(2, "a"), (3, "b"), (4, "a"), (6, "a"), (6, "b")]);
        assert_eq!(q.len(), 5);
        assert!(!q.is_empty());
    }

    #[test]
    fn zero_periods_are_ignored() {
        let q = EdgeQueue::periodic(&[("a", 0), ("b", 2)], 4);
        assert_eq!(q.len(), 2);
        assert!(q.events().iter().all(|e| e.domain == "b"));
    }

    #[test]
    fn pushes_keep_stable_time_order() {
        let mut q = EdgeQueue::new();
        q.push(5, "x");
        q.push(1, "y");
        q.push(5, "z");
        let got: Vec<(u64, &str)> =
            q.events().iter().map(|e| (e.time, e.domain.as_str())).collect();
        assert_eq!(got, vec![(1, "y"), (5, "x"), (5, "z")]);
    }

    #[test]
    fn from_events_sorts_stably() {
        let q = EdgeQueue::from_events([(3, "a".to_string()), (1, "b".into()), (3, "c".into())]);
        let got: Vec<&str> = q.events().iter().map(|e| e.domain.as_str()).collect();
        assert_eq!(got, vec!["b", "a", "c"]);
    }

    #[test]
    fn run_drives_unequal_ratios() {
        // Two independent counters on two clocks; a 3:1 schedule must advance them
        // 3:1. Uses the interpreter through the trait object.
        let mut m = ModuleBuilder::raw("TwoClocks");
        let clk_f = m.input("clk_f", Type::Clock);
        let clk_s = m.input("clk_s", Type::Clock);
        let f = m.output("f", Type::uint(8));
        let s = m.output("s", Type::uint(8));
        m.with_clock(&clk_f, |m| {
            let c = m.reg("fast", Type::uint(8));
            m.connect(&c, &c.add(&Signal::lit_w(1, 8)).bits(7, 0));
            m.connect(&f, &c);
        });
        m.with_clock(&clk_s, |m| {
            let c = m.reg("slow", Type::uint(8));
            m.connect(&c, &c.add(&Signal::lit_w(1, 8)).bits(7, 0));
            m.connect(&s, &c);
        });
        let netlist = lower_circuit(&m.into_circuit()).unwrap();
        for kind in
            [crate::EngineKind::Interp, crate::EngineKind::Compiled, crate::EngineKind::Batched]
        {
            let mut sim = kind.simulator(&netlist).unwrap();
            assert_eq!(sim.clock_domains(), vec!["clk_f".to_string(), "clk_s".to_string()]);
            let q = EdgeQueue::periodic(&[("clk_f", 1), ("clk_s", 3)], 9);
            q.run(sim.as_mut()).unwrap();
            assert_eq!(sim.peek("f").unwrap(), 9, "engine {kind}");
            assert_eq!(sim.peek("s").unwrap(), 3, "engine {kind}");
            // 12 scheduled events, but the ties at t = 3, 6, 9 merge into one
            // simultaneous edge each: 9 cycles.
            assert_eq!(sim.cycles(), 9);
        }
    }

    /// The semantic heart of the tie fix: registers exchanging values across two
    /// domains. On a simultaneous edge both stage the other's PRE-edge value and the
    /// pair swaps; fired back-to-back, the second domain would observe the first's
    /// post-edge value and the pair duplicates instead.
    #[test]
    fn tied_edges_fire_simultaneously_not_back_to_back() {
        let mut m = ModuleBuilder::raw("Exchange");
        let clk_a = m.input("clk_a", Type::Clock);
        let clk_b = m.input("clk_b", Type::Clock);
        let load = m.input("load", Type::bool());
        let ia = m.input("ia", Type::uint(8));
        let ib = m.input("ib", Type::uint(8));
        let oa = m.output("oa", Type::uint(8));
        let ob = m.output("ob", Type::uint(8));
        let mut regs = (None, None);
        m.with_clock(&clk_a, |m| regs.0 = Some(m.reg("a", Type::uint(8))));
        m.with_clock(&clk_b, |m| regs.1 = Some(m.reg("b", Type::uint(8))));
        let (a, b) = (regs.0.unwrap(), regs.1.unwrap());
        m.connect(&a, &load.mux(&ia, &b));
        m.connect(&b, &load.mux(&ib, &a));
        m.connect(&oa, &a);
        m.connect(&ob, &b);
        let netlist = lower_circuit(&m.into_circuit()).unwrap();
        for kind in
            [crate::EngineKind::Interp, crate::EngineKind::Compiled, crate::EngineKind::Batched]
        {
            let preload = |sim: &mut dyn SimEngine| {
                sim.poke("load", 1).unwrap();
                sim.poke("ia", 1).unwrap();
                sim.poke("ib", 2).unwrap();
                sim.step().unwrap();
                sim.poke("load", 0).unwrap();
                sim.eval().unwrap();
            };

            // Both clocks tie at every timestamp: each event is one simultaneous
            // edge, so the registers keep swapping 1 <-> 2.
            let mut sim = kind.simulator(&netlist).unwrap();
            preload(sim.as_mut());
            let q = EdgeQueue::periodic(&[("clk_a", 1), ("clk_b", 1)], 3);
            q.run(sim.as_mut()).unwrap();
            assert_eq!(sim.cycles(), 4, "engine {kind}");
            assert_eq!(sim.peek("oa").unwrap(), 2, "engine {kind}");
            assert_eq!(sim.peek("ob").unwrap(), 1, "engine {kind}");

            // The broken back-to-back interpretation visibly diverges: after
            // `a` edges alone, `b` captures a's POST-edge value and duplicates.
            let mut sim = kind.simulator(&netlist).unwrap();
            preload(sim.as_mut());
            sim.step_clock("clk_a").unwrap();
            sim.step_clock("clk_b").unwrap();
            assert_eq!(sim.peek("oa").unwrap(), 2, "engine {kind}");
            assert_eq!(sim.peek("ob").unwrap(), 2, "engine {kind}");
        }
    }

    #[test]
    fn unknown_domains_error() {
        let mut m = ModuleBuilder::new("R");
        let a = m.input("a", Type::uint(4));
        let o = m.output("o", Type::uint(4));
        let r = m.reg("r", Type::uint(4));
        m.connect(&r, &a);
        m.connect(&o, &r);
        let netlist = lower_circuit(&m.into_circuit()).unwrap();
        let mut sim = crate::EngineKind::Compiled.simulator(&netlist).unwrap();
        let q = EdgeQueue::from_events([(1, "ghost".to_string())]);
        assert!(matches!(q.run(sim.as_mut()), Err(SimError::NoSuchClock(d)) if d == "ghost"));
    }
}
