//! Timestamped per-domain edge schedules for multi-clock simulation.
//!
//! [`SimEngine::step_clock`] edges one clock domain at a time; driving a multi-clock
//! design therefore needs a *schedule* deciding which domain edges next. [`EdgeQueue`]
//! is that scheduler: a queue of `(time, domain)` events, built either from periodic
//! clocks ([`EdgeQueue::periodic`] — e.g. a 3:1 ratio between two domains) or from an
//! arbitrary interleaving ([`EdgeQueue::from_events`], handy for fuzzing random CDC
//! timings).
//!
//! Ties are deterministic: events at the same timestamp fire in the order the domains
//! were added (periodic) or pushed (explicit). A *simultaneous* edge of several
//! domains is different from two back-to-back `step_clock` calls — model it by
//! calling [`SimEngine::step`] yourself, or keep domains on coprime periods; the
//! queue itself always issues one domain per event, which is the conservative CDC
//! interpretation (no two clocks are ever exactly aligned).
//!
//! # Example
//!
//! ```
//! use rechisel_hcl::prelude::*;
//! use rechisel_sim::{EdgeQueue, EngineKind};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // A two-domain design: `fast` counts on clk_f, `slow` counts on clk_s.
//! let mut m = ModuleBuilder::raw("TwoClocks");
//! let clk_f = m.input("clk_f", Type::Clock);
//! let clk_s = m.input("clk_s", Type::Clock);
//! let f = m.output("f", Type::uint(8));
//! let s = m.output("s", Type::uint(8));
//! m.with_clock(&clk_f, |m| {
//!     let c = m.reg("fast", Type::uint(8));
//!     m.connect(&c, &c.add(&Signal::lit_w(1, 8)).bits(7, 0));
//!     m.connect(&f, &c);
//! });
//! m.with_clock(&clk_s, |m| {
//!     let c = m.reg("slow", Type::uint(8));
//!     m.connect(&c, &c.add(&Signal::lit_w(1, 8)).bits(7, 0));
//!     m.connect(&s, &c);
//! });
//! let netlist = rechisel_firrtl::lower_circuit(&m.into_circuit())?;
//! let mut sim = EngineKind::Compiled.simulator(&netlist)?;
//!
//! // clk_f every 2 time units, clk_s every 6: a 3:1 edge ratio.
//! let queue = EdgeQueue::periodic(&[("clk_f", 2), ("clk_s", 6)], 12);
//! queue.run(sim.as_mut())?;
//! assert_eq!(sim.peek("f")?, 6); // edges at t = 2, 4, 6, 8, 10, 12
//! assert_eq!(sim.peek("s")?, 2); // edges at t = 6, 12
//! # Ok(())
//! # }
//! ```

use crate::engine::SimEngine;
use crate::simulator::SimError;

/// One scheduled clock edge: the domain to step and the virtual time it fires at.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Edge {
    /// Virtual timestamp (arbitrary units; only the ordering matters).
    pub time: u64,
    /// Clock-domain name, as reported by [`SimEngine::clock_domains`].
    pub domain: String,
}

/// An ordered queue of per-domain clock edges (see the module docs).
#[derive(Debug, Clone, Default)]
pub struct EdgeQueue {
    /// Events sorted by time; same-time events keep their insertion order.
    events: Vec<Edge>,
}

impl EdgeQueue {
    /// An empty queue.
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds a queue from periodic clocks: each `(domain, period)` fires at
    /// `period, 2*period, ...` up to and including `horizon`. Same-time events fire
    /// in the order the domains are listed. Zero periods are ignored (a zero-period
    /// clock would fire infinitely often).
    pub fn periodic(clocks: &[(&str, u64)], horizon: u64) -> Self {
        let mut queue = Self::new();
        for t in 1..=horizon {
            for (domain, period) in clocks {
                if *period > 0 && t % *period == 0 {
                    queue.push(t, domain);
                }
            }
        }
        queue
    }

    /// Builds a queue from explicit `(time, domain)` events. The events are sorted
    /// by time with a stable sort, so same-time events keep the given order.
    pub fn from_events(events: impl IntoIterator<Item = (u64, String)>) -> Self {
        let mut events: Vec<Edge> =
            events.into_iter().map(|(time, domain)| Edge { time, domain }).collect();
        events.sort_by_key(|e| e.time);
        Self { events }
    }

    /// Appends one edge, keeping the queue sorted (stable: ties go after existing
    /// events at the same time).
    pub fn push(&mut self, time: u64, domain: &str) {
        let at = self.events.partition_point(|e| e.time <= time);
        self.events.insert(at, Edge { time, domain: domain.to_string() });
    }

    /// The scheduled edges, in firing order.
    pub fn events(&self) -> &[Edge] {
        &self.events
    }

    /// Number of scheduled edges.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True when no edges are scheduled.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Drives `sim` through every scheduled edge in order, one
    /// [`step_clock`](SimEngine::step_clock) per event.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::NoSuchClock`] when an event names a domain the design
    /// does not have; the simulator is left at the last successfully applied edge.
    pub fn run(&self, sim: &mut dyn SimEngine) -> Result<(), SimError> {
        for edge in &self.events {
            sim.step_clock(&edge.domain)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rechisel_firrtl::lower_circuit;
    use rechisel_hcl::prelude::*;

    #[test]
    fn periodic_schedules_interleave_by_time() {
        let q = EdgeQueue::periodic(&[("a", 2), ("b", 3)], 6);
        let got: Vec<(u64, &str)> =
            q.events().iter().map(|e| (e.time, e.domain.as_str())).collect();
        assert_eq!(got, vec![(2, "a"), (3, "b"), (4, "a"), (6, "a"), (6, "b")]);
        assert_eq!(q.len(), 5);
        assert!(!q.is_empty());
    }

    #[test]
    fn zero_periods_are_ignored() {
        let q = EdgeQueue::periodic(&[("a", 0), ("b", 2)], 4);
        assert_eq!(q.len(), 2);
        assert!(q.events().iter().all(|e| e.domain == "b"));
    }

    #[test]
    fn pushes_keep_stable_time_order() {
        let mut q = EdgeQueue::new();
        q.push(5, "x");
        q.push(1, "y");
        q.push(5, "z");
        let got: Vec<(u64, &str)> =
            q.events().iter().map(|e| (e.time, e.domain.as_str())).collect();
        assert_eq!(got, vec![(1, "y"), (5, "x"), (5, "z")]);
    }

    #[test]
    fn from_events_sorts_stably() {
        let q = EdgeQueue::from_events([(3, "a".to_string()), (1, "b".into()), (3, "c".into())]);
        let got: Vec<&str> = q.events().iter().map(|e| e.domain.as_str()).collect();
        assert_eq!(got, vec!["b", "a", "c"]);
    }

    #[test]
    fn run_drives_unequal_ratios() {
        // Two independent counters on two clocks; a 3:1 schedule must advance them
        // 3:1. Uses the interpreter through the trait object.
        let mut m = ModuleBuilder::raw("TwoClocks");
        let clk_f = m.input("clk_f", Type::Clock);
        let clk_s = m.input("clk_s", Type::Clock);
        let f = m.output("f", Type::uint(8));
        let s = m.output("s", Type::uint(8));
        m.with_clock(&clk_f, |m| {
            let c = m.reg("fast", Type::uint(8));
            m.connect(&c, &c.add(&Signal::lit_w(1, 8)).bits(7, 0));
            m.connect(&f, &c);
        });
        m.with_clock(&clk_s, |m| {
            let c = m.reg("slow", Type::uint(8));
            m.connect(&c, &c.add(&Signal::lit_w(1, 8)).bits(7, 0));
            m.connect(&s, &c);
        });
        let netlist = lower_circuit(&m.into_circuit()).unwrap();
        for kind in
            [crate::EngineKind::Interp, crate::EngineKind::Compiled, crate::EngineKind::Batched]
        {
            let mut sim = kind.simulator(&netlist).unwrap();
            assert_eq!(sim.clock_domains(), vec!["clk_f".to_string(), "clk_s".to_string()]);
            let q = EdgeQueue::periodic(&[("clk_f", 1), ("clk_s", 3)], 9);
            q.run(sim.as_mut()).unwrap();
            assert_eq!(sim.peek("f").unwrap(), 9, "engine {kind}");
            assert_eq!(sim.peek("s").unwrap(), 3, "engine {kind}");
            assert_eq!(sim.cycles(), 12);
        }
    }

    #[test]
    fn unknown_domains_error() {
        let mut m = ModuleBuilder::new("R");
        let a = m.input("a", Type::uint(4));
        let o = m.output("o", Type::uint(4));
        let r = m.reg("r", Type::uint(4));
        m.connect(&r, &a);
        m.connect(&o, &r);
        let netlist = lower_circuit(&m.into_circuit()).unwrap();
        let mut sim = crate::EngineKind::Compiled.simulator(&netlist).unwrap();
        let q = EdgeQueue::from_events([(1, "ghost".to_string())]);
        assert!(matches!(q.run(sim.as_mut()), Err(SimError::NoSuchClock(d)) if d == "ghost"));
    }
}
