//! Batched lockstep simulation: N independent state vectors through one [`Tape`].
//!
//! The reflection loop of the paper re-runs the same reference design under many
//! stimuli, so the data dimension is embarrassingly parallel. [`BatchedSimulator`]
//! exploits that the Verilator way: the levelized instruction tape is walked **once
//! per cycle** while every instruction is applied to N independent lanes, so the
//! per-instruction dispatch cost (and every instruction-stream cache miss) is
//! amortized over the whole batch.
//!
//! State is laid out structure-of-arrays: for each tape slot the N lane words are
//! contiguous (`bits[slot * lanes + lane]`), as are the N copies of every memory word.
//! Constants, masks, and the program itself are shared by all lanes. Lanes never
//! interact: lane *k* of a batched run is bit-identical to a solo
//! [`CompiledSimulator`](crate::CompiledSimulator) run fed the same pokes and the same
//! edge schedule (steps — full or per-domain — apply to every lane, so the
//! [`SimError::SyncReadBeforeClock`] taint state is shared by the whole batch), which
//! the differential fuzz suite asserts peek-for-peek.
//!
//! Tapes whose every slot and memory word fits in 64 (or 32) bits — and whose
//! program is fully specialized (no shape-generic instructions) — run in **narrow
//! mode**: lane words are `u64` (or `u32`) instead of `u128`, cutting the state
//! traffic and multiplying the SIMD density of the lane loops. Mode selection is
//! automatic and invisible; the wide-width differential fuzz population pins the
//! `u128` path.

use std::sync::Arc;

use rechisel_firrtl::lower::Netlist;

use crate::compiled::{ext, CmpKind, Instr, Tape, TapeMem};
use crate::engine::SimEngine;
use crate::eval::{apply_prim, mask, EvalValue};
use crate::simulator::SimError;

/// A lane word: the batched engine's state element, `u128` in general and `u64` or
/// `u32` in narrow mode. The two width-sensitive operations (`addsub`, `cmp_bits`)
/// carry the tape's 128-bit-word sign-extension shifts and re-anchor them to the
/// word size.
trait Word:
    Copy
    + Ord
    + std::fmt::Debug
    + From<bool>
    + std::ops::BitAnd<Output = Self>
    + std::ops::BitOr<Output = Self>
    + std::ops::BitXor<Output = Self>
    + std::ops::Not<Output = Self>
    + std::ops::Shl<u32, Output = Self>
    + std::ops::Shr<u32, Output = Self>
{
    /// The all-zero word.
    const ZERO: Self;
    /// All-ones when the word's low bit is set, all-zeros otherwise — the branchless
    /// mux mask the lane loops blend with (keeps the select vectorizable).
    fn lsb_mask(self) -> Self;
    /// Truncating conversion (callers guarantee the value fits the mode's width).
    fn from_u128(v: u128) -> Self;
    /// Widening conversion back to the engine's public `u128` values.
    fn to_u128(self) -> u128;
    /// `a ± b` under the tape's sign-extension shifts, wrapping, unmasked.
    fn addsub(self, other: Self, sa: u32, sb: u32, sub: bool) -> Self;
    /// One comparison under the tape's sign-extension shifts.
    fn cmp_bits(self, other: Self, sa: u32, sb: u32, kind: CmpKind, signed: bool) -> bool;
}

impl Word for u128 {
    const ZERO: Self = 0;

    #[inline(always)]
    fn lsb_mask(self) -> Self {
        (self & 1).wrapping_neg()
    }

    #[inline(always)]
    fn from_u128(v: u128) -> Self {
        v
    }

    #[inline(always)]
    fn to_u128(self) -> u128 {
        self
    }

    #[inline(always)]
    fn addsub(self, other: Self, sa: u32, sb: u32, sub: bool) -> Self {
        let (ea, eb) = (ext(self, sa), ext(other, sb));
        (if sub { ea.wrapping_sub(eb) } else { ea.wrapping_add(eb) }) as u128
    }

    #[inline(always)]
    fn cmp_bits(self, other: Self, sa: u32, sb: u32, kind: CmpKind, signed: bool) -> bool {
        match kind {
            CmpKind::Eq => ext(self, sa) == ext(other, sb),
            CmpKind::Neq => ext(self, sa) != ext(other, sb),
            _ => {
                let ord =
                    if signed { ext(self, sa).cmp(&ext(other, sb)) } else { self.cmp(&other) };
                match kind {
                    CmpKind::Lt => ord == std::cmp::Ordering::Less,
                    CmpKind::Leq => ord != std::cmp::Ordering::Greater,
                    CmpKind::Gt => ord == std::cmp::Ordering::Greater,
                    _ => ord != std::cmp::Ordering::Less,
                }
            }
        }
    }
}

/// Sign-extends a `u64` lane word whose tape shift was computed for 128-bit words:
/// shifts of 0 mean "unsigned, keep raw", larger shifts re-anchor to the 64-bit word.
#[inline(always)]
fn ext64(bits: u64, shift: u32) -> i64 {
    let s = shift.saturating_sub(64);
    ((bits << s) as i64) >> s
}

impl Word for u64 {
    const ZERO: Self = 0;

    #[inline(always)]
    fn lsb_mask(self) -> Self {
        (self & 1).wrapping_neg()
    }

    #[inline(always)]
    fn from_u128(v: u128) -> Self {
        v as u64
    }

    #[inline(always)]
    fn to_u128(self) -> u128 {
        u128::from(self)
    }

    #[inline(always)]
    fn addsub(self, other: Self, sa: u32, sb: u32, sub: bool) -> Self {
        // Modular arithmetic: the i64 sums agree with the i128 sums mod 2^64, and
        // the caller masks the result to a width of at most 64 bits.
        let (ea, eb) = (ext64(self, sa), ext64(other, sb));
        (if sub { ea.wrapping_sub(eb) } else { ea.wrapping_add(eb) }) as u64
    }

    #[inline(always)]
    fn cmp_bits(self, other: Self, sa: u32, sb: u32, kind: CmpKind, signed: bool) -> bool {
        // `narrow_eligible` guarantees every signed comparison's operand values fit
        // in i64, so the value-level comparisons agree with the i128 ones.
        match kind {
            CmpKind::Eq => ext64(self, sa) == ext64(other, sb),
            CmpKind::Neq => ext64(self, sa) != ext64(other, sb),
            _ => {
                let ord =
                    if signed { ext64(self, sa).cmp(&ext64(other, sb)) } else { self.cmp(&other) };
                match kind {
                    CmpKind::Lt => ord == std::cmp::Ordering::Less,
                    CmpKind::Leq => ord != std::cmp::Ordering::Greater,
                    CmpKind::Gt => ord == std::cmp::Ordering::Greater,
                    _ => ord != std::cmp::Ordering::Less,
                }
            }
        }
    }
}

/// Sign-extends a `u32` lane word under a 128-bit-word tape shift (see [`ext64`]).
#[inline(always)]
fn ext32(bits: u32, shift: u32) -> i32 {
    let s = shift.saturating_sub(96);
    ((bits << s) as i32) >> s
}

impl Word for u32 {
    const ZERO: Self = 0;

    #[inline(always)]
    fn lsb_mask(self) -> Self {
        (self & 1).wrapping_neg()
    }

    #[inline(always)]
    fn from_u128(v: u128) -> Self {
        v as u32
    }

    #[inline(always)]
    fn to_u128(self) -> u128 {
        u128::from(self)
    }

    #[inline(always)]
    fn addsub(self, other: Self, sa: u32, sb: u32, sub: bool) -> Self {
        // Modular arithmetic mod 2^32; the caller masks to a width of at most 32.
        let (ea, eb) = (ext32(self, sa), ext32(other, sb));
        (if sub { ea.wrapping_sub(eb) } else { ea.wrapping_add(eb) }) as u32
    }

    #[inline(always)]
    fn cmp_bits(self, other: Self, sa: u32, sb: u32, kind: CmpKind, signed: bool) -> bool {
        match kind {
            CmpKind::Eq => ext32(self, sa) == ext32(other, sb),
            CmpKind::Neq => ext32(self, sa) != ext32(other, sb),
            _ => {
                let ord =
                    if signed { ext32(self, sa).cmp(&ext32(other, sb)) } else { self.cmp(&other) };
                match kind {
                    CmpKind::Lt => ord == std::cmp::Ordering::Less,
                    CmpKind::Leq => ord != std::cmp::Ordering::Greater,
                    CmpKind::Gt => ord == std::cmp::Ordering::Greater,
                    _ => ord != std::cmp::Ordering::Less,
                }
            }
        }
    }
}

/// Whether a tape can run its lanes in `u64` words without any observable
/// difference from the `u128` reference semantics.
///
/// Requires every slot and memory word to be at most 64 bits wide and every
/// instruction to be a specialized bits-only form whose constants fit the narrow
/// word. Signed/mixed comparisons additionally need every unsigned operand below 64
/// bits so the compared *values* fit in `i64` (a 64-bit unsigned operand next to a
/// signed one only compares correctly in 128-bit words). Generic instructions
/// (`Prim1`/`Prim2`/`Mux`) disqualify the tape: they evaluate in full `u128`
/// [`EvalValue`]s and may produce runtime shapes wider than the static slot widths.
fn narrow_eligible(tape: &Tape, word_bits: u32) -> bool {
    let word_mask: u128 = (1u128 << word_bits) - 1;
    // Tape sign-extension shifts are anchored to 128-bit words: 0 means unsigned
    // (keep raw), and a shift of at least `128 - word_bits` re-anchors losslessly.
    let sext_ok = |s: u32| s == 0 || s >= 128 - word_bits;
    let fits_signed_word = |slot: u32| {
        let v = &tape.init[slot as usize];
        v.signed || v.width < word_bits
    };
    let instr_ok = |instr: &Instr| match *instr {
        Instr::MemRead { .. }
        | Instr::And { .. }
        | Instr::Or { .. }
        | Instr::Xor { .. }
        | Instr::MuxBits { .. } => true,
        Instr::CopyMask { mask, .. } | Instr::Not { mask, .. } => mask <= word_mask,
        Instr::AddSub { mask, sa, sb, .. } => mask <= word_mask && sext_ok(sa) && sext_ok(sb),
        Instr::Cmp { a, b, sa, sb, signed, kind, .. } => {
            let values_ok = match kind {
                // Unsigned orderings compare raw words, and same-shift equality is
                // injective at any width; everything else compares sign-extended
                // values, which must fit in the narrow word's signed range.
                CmpKind::Lt | CmpKind::Leq | CmpKind::Gt | CmpKind::Geq if !signed => true,
                CmpKind::Eq | CmpKind::Neq if sa == sb => true,
                _ => fits_signed_word(a) && fits_signed_word(b),
            };
            sext_ok(sa) && sext_ok(sb) && values_ok
        }
        Instr::Slice { lo, mask, .. } => lo < word_bits && mask <= word_mask,
        Instr::CatBits { shift, mask, .. } => shift < word_bits && mask <= word_mask,
        Instr::Prim1 { .. } | Instr::Prim2 { .. } | Instr::Mux { .. } => false,
    };
    tape.init.iter().all(|v| v.width <= word_bits)
        && tape.mems.iter().all(|m| m.width <= word_bits)
        && tape.comb.iter().all(instr_ok)
        && tape.reg_program.iter().all(instr_ok)
        && tape.commits.iter().all(|c| c.mask <= word_mask)
        && tape.mem_commits.iter().all(|c| c.mask <= word_mask)
}

/// Executes a [`Tape`] over N independent stimulus lanes in lockstep.
///
/// All lanes advance together: [`eval`](BatchedSimulator::eval) and
/// [`step`](BatchedSimulator::step) apply to the whole batch, while
/// [`poke`](BatchedSimulator::poke) / [`peek`](BatchedSimulator::peek) /
/// [`peek_mem`](BatchedSimulator::peek_mem) / [`poke_mem`](BatchedSimulator::poke_mem)
/// address one lane. The [`SimEngine`] implementation views lane 0 (stepping still
/// advances every lane), so a 1-lane batch is a drop-in engine behind
/// [`EngineKind::Batched`](crate::EngineKind::Batched).
///
/// # Example
///
/// ```
/// use std::sync::Arc;
/// use rechisel_hcl::prelude::*;
/// use rechisel_sim::{BatchedSimulator, Tape};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut m = ModuleBuilder::new("Counter");
/// let en = m.input("en", Type::bool());
/// let out = m.output("out", Type::uint(8));
/// let count = m.reg_init("count", Type::uint(8), &Signal::lit_w(0, 8));
/// m.when(&en, |m| m.connect(&count, &count.add(&Signal::lit_w(1, 8)).bits(7, 0)));
/// m.connect(&out, &count);
/// let netlist = rechisel_firrtl::lower_circuit(&m.into_circuit())?;
///
/// // One tape walk per cycle drives all four lanes.
/// let mut sim = BatchedSimulator::new(&netlist, 4)?;
/// sim.reset(2)?;
/// for lane in 0..4 {
///     sim.poke(lane, "en", (lane % 2 == 0) as u128)?;
/// }
/// sim.step_n(5);
/// assert_eq!(sim.peek(0, "out")?, 5); // enabled lane counted
/// assert_eq!(sim.peek(1, "out")?, 0); // disabled lane held
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct BatchedSimulator {
    tape: Arc<Tape>,
    lanes: usize,
    /// The word-width-specialized lane state (see [`Core`]).
    planes: Planes,
    /// Implicit sync-read registers whose own clock domain has not ticked yet.
    /// Lockstep stepping applies every edge to all lanes, so one set covers the
    /// whole batch.
    uncaptured: std::collections::BTreeSet<String>,
    /// Cycle counter (each full or per-domain edge counts one cycle).
    cycles: u64,
}

/// The lane state in one of the word widths (see the module docs on narrow mode).
#[derive(Debug, Clone)]
enum Planes {
    /// General path: 128-bit lane words, all instructions supported.
    Wide(Core<u128>),
    /// Narrow path: 64-bit lane words for fully-specialized tapes that fit.
    Narrow(Core<u64>),
    /// Narrowest path: 32-bit lane words for small fully-specialized tapes.
    Narrow32(Core<u32>),
}

/// Dispatches a `Core` method across the two word widths.
macro_rules! on_core {
    ($planes:expr, $c:ident => $body:expr) => {
        match $planes {
            Planes::Wide($c) => $body,
            Planes::Narrow($c) => $body,
            Planes::Narrow32($c) => $body,
        }
    };
}

/// The word-width-generic lane state of a batch.
#[derive(Debug, Clone)]
struct Core<W> {
    /// Slot-major lane words: `bits[slot * lanes + lane]`.
    bits: Vec<W>,
    /// Per-lane width metadata, only rewritten by generic (dynamic-shape)
    /// instructions (never present in narrow mode).
    width: Vec<u32>,
    /// Per-lane signedness metadata, kept in lockstep with `width`.
    signed: Vec<bool>,
    /// Word-major memory lanes: `mem[word * lanes + lane]`.
    mem: Vec<W>,
}

impl<W: Word> Core<W> {
    fn from_tape(tape: &Tape, lanes: usize) -> Self {
        let slots = tape.init.len();
        let mut bits = Vec::with_capacity(slots * lanes);
        let mut width = Vec::with_capacity(slots * lanes);
        let mut signed = Vec::with_capacity(slots * lanes);
        for value in &tape.init {
            bits.extend(std::iter::repeat_n(W::from_u128(value.bits), lanes));
            width.extend(std::iter::repeat_n(value.width, lanes));
            signed.extend(std::iter::repeat_n(value.signed, lanes));
        }
        let mut mem = Vec::with_capacity(tape.mem_init.len() * lanes);
        for word in &tape.mem_init {
            mem.extend(std::iter::repeat_n(W::from_u128(*word), lanes));
        }
        Self { bits, width, signed, mem }
    }

    #[inline]
    fn get(&self, at: usize) -> u128 {
        self.bits[at].to_u128()
    }

    #[inline]
    fn set(&mut self, at: usize, value: u128) {
        self.bits[at] = W::from_u128(value);
    }

    #[inline]
    fn mem_get(&self, at: usize) -> u128 {
        self.mem[at].to_u128()
    }

    #[inline]
    fn mem_set(&mut self, at: usize, value: u128) {
        self.mem[at] = W::from_u128(value);
    }

    fn eval(&mut self, tape: &Tape, lanes: usize) {
        exec_batched(
            &tape.comb,
            &mut self.bits,
            &mut self.width,
            &mut self.signed,
            &self.mem,
            lanes,
        );
    }

    /// The clock edge: register staging, then memory commits (while every operand
    /// slot still holds its pre-edge value), then register commits. With a `domains`
    /// filter only the commits of the listed clock domains apply (full staging still
    /// runs — staged temps of other domains are simply discarded).
    fn edge(&mut self, tape: &Tape, lanes: usize, domains: Option<&[u32]>) {
        exec_batched(
            &tape.reg_program,
            &mut self.bits,
            &mut self.width,
            &mut self.signed,
            &self.mem,
            lanes,
        );
        for commit in &tape.mem_commits {
            if domains.is_some_and(|ds| !ds.contains(&commit.domain)) {
                continue;
            }
            let en0 = commit.en as usize * lanes;
            let addr0 = commit.addr as usize * lanes;
            let val0 = commit.val as usize * lanes;
            let cmask = W::from_u128(commit.mask);
            for l in 0..lanes {
                if self.bits[en0 + l] & W::from(true) == W::ZERO {
                    continue;
                }
                let addr = self.bits[addr0 + l].to_u128();
                if addr < u128::from(commit.depth) {
                    let value = self.bits[val0 + l] & cmask;
                    let word = match commit.lane {
                        None => value,
                        Some((wmask, old)) => {
                            let wmask = self.bits[wmask as usize * lanes + l] & cmask;
                            (self.bits[old as usize * lanes + l] & !wmask) | (value & wmask)
                        }
                    };
                    self.mem[(commit.base + addr as u32) as usize * lanes + l] = word;
                }
            }
        }
        for commit in &tape.commits {
            if domains.is_some_and(|ds| !ds.contains(&commit.domain)) {
                continue;
            }
            let m = W::from_u128(commit.mask);
            row1(&mut self.bits, commit.reg, commit.staged, lanes, |x, _| x & m);
        }
    }
}

impl BatchedSimulator {
    /// Compiles `netlist` and creates a batch of `lanes` identical initial states
    /// (inputs and registers zero, memories at their declared initial image).
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Eval`] when the netlist cannot be compiled (see
    /// [`Tape::compile`]).
    ///
    /// # Panics
    ///
    /// Panics when `lanes` is zero.
    pub fn new(netlist: &Netlist, lanes: usize) -> Result<Self, SimError> {
        Ok(Self::from_tape(Arc::new(Tape::compile(netlist)?), lanes))
    }

    /// Creates a batch over an already-compiled (possibly shared) tape.
    ///
    /// # Panics
    ///
    /// Panics when `lanes` is zero.
    pub fn from_tape(tape: Arc<Tape>, lanes: usize) -> Self {
        assert!(lanes > 0, "a batched simulator needs at least one lane");
        let planes = if narrow_eligible(&tape, 32) {
            Planes::Narrow32(Core::from_tape(&tape, lanes))
        } else if narrow_eligible(&tape, 64) {
            Planes::Narrow(Core::from_tape(&tape, lanes))
        } else {
            Planes::Wide(Core::from_tape(&tape, lanes))
        };
        let uncaptured = tape.sync_regs.iter().map(|(name, _)| name.clone()).collect();
        Self { tape, lanes, planes, uncaptured, cycles: 0 }
    }

    /// Number of independent stimulus lanes in this batch.
    pub fn lanes(&self) -> usize {
        self.lanes
    }

    /// The lane word width in bits: 32 or 64 when the tape qualified for a narrow
    /// mode (every slot and memory word fits the word, fully specialized program),
    /// 128 otherwise. Purely informational — every mode is bit-identical to the solo
    /// engines.
    pub fn word_bits(&self) -> u32 {
        match &self.planes {
            Planes::Wide(_) => 128,
            Planes::Narrow(_) => 64,
            Planes::Narrow32(_) => 32,
        }
    }

    /// The compiled program all lanes execute.
    pub fn tape(&self) -> &Arc<Tape> {
        &self.tape
    }

    /// Clock cycles simulated so far (lockstep: identical for every lane).
    pub fn cycles(&self) -> u64 {
        self.cycles
    }

    #[inline]
    fn slot(&self, lane: usize, slot: u32) -> usize {
        debug_assert!(lane < self.lanes);
        slot as usize * self.lanes + lane
    }

    fn check_lane(&self, lane: usize) {
        assert!(lane < self.lanes, "lane {lane} out of range (batch has {} lanes)", self.lanes);
    }

    /// Drives an input port on one lane.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::NoSuchPort`] if `name` is not an input port and
    /// [`SimError::ValueTooWide`] if `value` does not fit in the port's width.
    ///
    /// # Panics
    ///
    /// Panics when `lane` is out of range.
    pub fn poke(&mut self, lane: usize, name: &str, value: u128) -> Result<(), SimError> {
        self.check_lane(lane);
        let port =
            self.tape.inputs.get(name).ok_or_else(|| SimError::NoSuchPort(name.to_string()))?;
        if value != mask(value, port.width) {
            return Err(SimError::ValueTooWide {
                port: port.name.clone(),
                width: port.width,
                value,
            });
        }
        let at = self.slot(lane, port.slot);
        on_core!(&mut self.planes, c => c.set(at, value));
        Ok(())
    }

    /// Drives an input port identically on every lane.
    ///
    /// # Errors
    ///
    /// Same conditions as [`BatchedSimulator::poke`].
    pub fn poke_all(&mut self, name: &str, value: u128) -> Result<(), SimError> {
        for lane in 0..self.lanes {
            self.poke(lane, name, value)?;
        }
        Ok(())
    }

    /// Reads the current value of any signal (port, wire or register) on one lane.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::NoSuchPort`] if the signal does not exist, and
    /// [`SimError::SyncReadBeforeClock`] when the signal depends on a sequential
    /// memory read whose own clock domain has not ticked yet (lockstep: the taint
    /// state is shared by every lane).
    ///
    /// # Panics
    ///
    /// Panics when `lane` is out of range.
    pub fn peek(&self, lane: usize, name: &str) -> Result<u128, SimError> {
        self.check_lane(lane);
        if !self.uncaptured.is_empty() {
            if let Some(sources) = self.tape.sync_sources.get(name) {
                if sources.iter().any(|s| self.uncaptured.contains(s)) {
                    return Err(SimError::SyncReadBeforeClock { signal: name.to_string() });
                }
            }
        }
        self.tape
            .index
            .get(name)
            .map(|slot| on_core!(&self.planes, c => c.get(self.slot(lane, *slot))))
            .ok_or_else(|| SimError::NoSuchPort(name.to_string()))
    }

    /// Re-evaluates all combinational logic across every lane (one tape walk).
    pub fn eval(&mut self) {
        let Self { tape, lanes, planes, .. } = self;
        on_core!(planes, c => c.eval(tape, *lanes));
    }

    /// Advances one clock cycle on every lane: combinational program, register
    /// staging, simultaneous commit (memory writes first, while every operand slot
    /// still holds its pre-edge value, then registers), combinational program again.
    ///
    /// The commit rules per lane are exactly [`CompiledSimulator`](crate::CompiledSimulator)'s: whole-word
    /// stores in port-declaration order (last port wins) and lane-masked ports merge
    /// into the pre-edge word.
    pub fn step(&mut self) {
        self.step_filtered(None);
    }

    /// Edges one clock domain on every lane: only the registers and memory write
    /// ports clocked by `domain` commit (see [`SimEngine::step_clock`]).
    ///
    /// # Errors
    ///
    /// Returns [`SimError::NoSuchClock`] when `domain` is not a clock domain of the
    /// compiled design.
    pub fn step_clock(&mut self, domain: &str) -> Result<(), SimError> {
        let idx = self.domain_index(domain)?;
        self.step_filtered(Some(&[idx]));
        Ok(())
    }

    /// Edges several clock domains **simultaneously** on every lane: one edge event,
    /// one cycle, with every listed domain's commits applied against the same staged
    /// pre-edge state (see [`SimEngine::step_clocks`]).
    ///
    /// # Errors
    ///
    /// Returns [`SimError::NoSuchClock`] when `domains` is empty or names a domain
    /// that is not a clock domain of the compiled design.
    pub fn step_clocks(&mut self, domains: &[&str]) -> Result<(), SimError> {
        if domains.is_empty() {
            return Err(SimError::NoSuchClock("(empty domain set)".to_string()));
        }
        let mut indices = Vec::with_capacity(domains.len());
        for domain in domains {
            indices.push(self.domain_index(domain)?);
        }
        self.step_filtered(Some(&indices));
        Ok(())
    }

    fn domain_index(&self, domain: &str) -> Result<u32, SimError> {
        self.tape
            .domains
            .iter()
            .position(|d| d == domain)
            .map(|i| i as u32)
            .ok_or_else(|| SimError::NoSuchClock(domain.to_string()))
    }

    /// The design's clock domains, in first-appearance order.
    pub fn clock_domains(&self) -> &[String] {
        &self.tape.domains
    }

    fn step_filtered(&mut self, domains: Option<&[u32]>) {
        self.eval();
        let Self { tape, lanes, planes, .. } = self;
        on_core!(planes, c => c.edge(tape, *lanes, domains));
        if !self.uncaptured.is_empty() {
            let sync_regs = &self.tape.sync_regs;
            self.uncaptured.retain(|name| {
                !sync_regs.iter().any(|(reg, reg_domain)| {
                    reg == name && domains.is_none_or(|ds| ds.contains(reg_domain))
                })
            });
        }
        self.cycles += 1;
        self.eval();
    }

    /// Advances `n` clock cycles on every lane.
    pub fn step_n(&mut self, n: u32) {
        for _ in 0..n {
            self.step();
        }
    }

    /// Asserts the `reset` input (when present) on every lane for `cycles` cycles,
    /// then deasserts it.
    ///
    /// Each cycle is a full [`step`](Self::step), so the pulse edges **every** clock
    /// domain on every lane. Memory init images are not restored — initialization
    /// applies at time zero only.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::NoSuchPort`] only if the tape's reset bookkeeping is
    /// inconsistent (cannot happen for tapes produced by [`Tape::compile`]).
    pub fn reset(&mut self, cycles: u32) -> Result<(), SimError> {
        if self.tape.has_reset {
            self.poke_all("reset", 1)?;
            self.step_n(cycles);
            self.poke_all("reset", 0)?;
            self.eval();
        }
        Ok(())
    }

    /// Reads one lane's output ports, in port order (raw values — no
    /// [`SimError::SyncReadBeforeClock`] guard; see `SimEngine::outputs`).
    ///
    /// # Panics
    ///
    /// Panics when `lane` is out of range.
    pub fn outputs(&self, lane: usize) -> Vec<(String, u128)> {
        self.check_lane(lane);
        self.tape
            .outputs
            .iter()
            .map(|(name, slot)| {
                (name.clone(), on_core!(&self.planes, c => c.get(self.slot(lane, *slot))))
            })
            .collect()
    }

    fn tape_mem(&self, mem: &str) -> Result<&TapeMem, SimError> {
        self.tape
            .mems
            .iter()
            .find(|m| m.name == mem)
            .ok_or_else(|| SimError::NoSuchMem(mem.to_string()))
    }

    /// Reads the current contents of one memory word on one lane.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::NoSuchMem`] for unknown memories and
    /// [`SimError::MemAddrOutOfRange`] for addresses outside `0..depth`.
    ///
    /// # Panics
    ///
    /// Panics when `lane` is out of range.
    pub fn peek_mem(&self, lane: usize, mem: &str, addr: u128) -> Result<u128, SimError> {
        self.check_lane(lane);
        let m = self.tape_mem(mem)?;
        if addr >= u128::from(m.depth) {
            return Err(SimError::MemAddrOutOfRange {
                mem: mem.to_string(),
                depth: m.depth as usize,
                addr,
            });
        }
        Ok(
            on_core!(&self.planes, c => c.mem_get((m.base + addr as u32) as usize * self.lanes + lane)),
        )
    }

    /// Overwrites one memory word on one lane, validating the address and value first.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::NoSuchMem`] for unknown memories,
    /// [`SimError::MemAddrOutOfRange`] for addresses outside `0..depth`, and
    /// [`SimError::MemValueTooWide`] when `value` has bits above the word width.
    ///
    /// # Panics
    ///
    /// Panics when `lane` is out of range.
    pub fn poke_mem(
        &mut self,
        lane: usize,
        mem: &str,
        addr: u128,
        value: u128,
    ) -> Result<(), SimError> {
        self.check_lane(lane);
        let m = self.tape_mem(mem)?;
        if addr >= u128::from(m.depth) {
            return Err(SimError::MemAddrOutOfRange {
                mem: mem.to_string(),
                depth: m.depth as usize,
                addr,
            });
        }
        if value != mask(value, m.width) {
            return Err(SimError::MemValueTooWide { mem: mem.to_string(), width: m.width, value });
        }
        let word = (m.base + addr as u32) as usize * self.lanes + lane;
        on_core!(&mut self.planes, c => c.mem_set(word, value));
        Ok(())
    }
}

/// Applies `f(a_lane, lane)` across one destination row: `dst[l] = f(a[l], l)`.
///
/// The destination row is split out of `bits` so the hot loop runs over disjoint
/// slices — no per-element bounds checks, and LLVM is free to vectorize across the
/// lane dimension. A source row that aliases the destination (never produced by
/// `Tape::compile`, which gives every instruction a fresh slot) falls back to the
/// index loop.
fn row1<W: Word>(bits: &mut [W], dst: u32, a: u32, lanes: usize, f: impl Fn(W, usize) -> W) {
    let d0 = dst as usize * lanes;
    let a0 = a as usize * lanes;
    if a0 + lanes <= d0 || a0 >= d0 + lanes {
        let (pre, rest) = bits.split_at_mut(d0);
        let (drow, post) = rest.split_at_mut(lanes);
        let arow = if a0 < d0 { &pre[a0..a0 + lanes] } else { &post[a0 - d0 - lanes..a0 - d0] };
        for (l, (d, &x)) in drow.iter_mut().zip(arow).enumerate() {
            *d = f(x, l);
        }
    } else {
        for l in 0..lanes {
            bits[d0 + l] = f(bits[a0 + l], l);
        }
    }
}

/// Applies `f(a_lane, b_lane)` across one destination row: `dst[l] = f(a[l], b[l])`.
/// Same disjoint-slice fast path as [`row1`].
fn row2<W: Word>(bits: &mut [W], dst: u32, a: u32, b: u32, lanes: usize, f: impl Fn(W, W) -> W) {
    let d0 = dst as usize * lanes;
    let a0 = a as usize * lanes;
    let b0 = b as usize * lanes;
    let disjoint = |o: usize| o + lanes <= d0 || o >= d0 + lanes;
    if disjoint(a0) && disjoint(b0) {
        let (pre, rest) = bits.split_at_mut(d0);
        let (drow, post) = rest.split_at_mut(lanes);
        let src = |o: usize| -> &[W] {
            if o < d0 {
                &pre[o..o + lanes]
            } else {
                &post[o - d0 - lanes..o - d0]
            }
        };
        for ((d, &x), &y) in drow.iter_mut().zip(src(a0)).zip(src(b0)) {
            *d = f(x, y);
        }
    } else {
        for l in 0..lanes {
            bits[d0 + l] = f(bits[a0 + l], bits[b0 + l]);
        }
    }
}

/// Applies one instruction program to every lane, slot-major.
///
/// Specialized (bits-only) instructions touch only the `bits` plane and run as
/// disjoint-slice lane loops (see [`row1`]/[`row2`]); generic instructions go through
/// [`apply_prim`] per lane and maintain the per-lane width/signedness planes, exactly
/// mirroring the solo compiled `exec` loop.
fn exec_batched<W: Word>(
    instrs: &[Instr],
    bits: &mut [W],
    width: &mut [u32],
    signed: &mut [bool],
    mem: &[W],
    lanes: usize,
) {
    let at = |slot: u32| slot as usize * lanes;
    for instr in instrs {
        match *instr {
            Instr::MemRead { dst, addr, base, depth } => {
                row1(bits, dst, addr, lanes, |a, l| {
                    if a.to_u128() < u128::from(depth) {
                        mem[(base + a.to_u128() as u32) as usize * lanes + l]
                    } else {
                        W::ZERO
                    }
                });
            }
            Instr::CopyMask { dst, src, mask } => {
                let m = W::from_u128(mask);
                row1(bits, dst, src, lanes, |x, _| x & m);
            }
            Instr::Not { dst, a, mask } => {
                let m = W::from_u128(mask);
                row1(bits, dst, a, lanes, |x, _| !x & m);
            }
            Instr::And { dst, a, b } => {
                row2(bits, dst, a, b, lanes, |x, y| x & y);
            }
            Instr::Or { dst, a, b } => {
                row2(bits, dst, a, b, lanes, |x, y| x | y);
            }
            Instr::Xor { dst, a, b } => {
                row2(bits, dst, a, b, lanes, |x, y| x ^ y);
            }
            Instr::AddSub { dst, a, b, sa, sb, mask, sub } => {
                let m = W::from_u128(mask);
                if sub {
                    row2(bits, dst, a, b, lanes, |x, y| x.addsub(y, sa, sb, true) & m);
                } else {
                    row2(bits, dst, a, b, lanes, |x, y| x.addsub(y, sa, sb, false) & m);
                }
            }
            Instr::Cmp { dst, a, b, sa, sb, kind, signed } => {
                // Dispatch on (kind, signed) once per instruction, not per lane:
                // each arm hands `row2` a closure whose comparison is a compile-time
                // constant, keeping the lane loop branch-free and vectorizable.
                macro_rules! cmp {
                    ($k:expr, $s:expr) => {
                        row2(bits, dst, a, b, lanes, |x: W, y: W| {
                            W::from(x.cmp_bits(y, sa, sb, $k, $s))
                        })
                    };
                }
                match (kind, signed) {
                    (CmpKind::Eq, _) => cmp!(CmpKind::Eq, false),
                    (CmpKind::Neq, _) => cmp!(CmpKind::Neq, false),
                    (CmpKind::Lt, false) => cmp!(CmpKind::Lt, false),
                    (CmpKind::Lt, true) => cmp!(CmpKind::Lt, true),
                    (CmpKind::Leq, false) => cmp!(CmpKind::Leq, false),
                    (CmpKind::Leq, true) => cmp!(CmpKind::Leq, true),
                    (CmpKind::Gt, false) => cmp!(CmpKind::Gt, false),
                    (CmpKind::Gt, true) => cmp!(CmpKind::Gt, true),
                    (CmpKind::Geq, false) => cmp!(CmpKind::Geq, false),
                    (CmpKind::Geq, true) => cmp!(CmpKind::Geq, true),
                }
            }
            Instr::MuxBits { dst, c, t, f } => {
                let (d0, c0, t0, f0) = (at(dst), at(c), at(t), at(f));
                let disjoint = |o: usize| o + lanes <= d0 || o >= d0 + lanes;
                if disjoint(c0) && disjoint(t0) && disjoint(f0) {
                    let (pre, rest) = bits.split_at_mut(d0);
                    let (drow, post) = rest.split_at_mut(lanes);
                    let src = |o: usize| -> &[W] {
                        if o < d0 {
                            &pre[o..o + lanes]
                        } else {
                            &post[o - d0 - lanes..o - d0]
                        }
                    };
                    let it = drow.iter_mut().zip(src(c0)).zip(src(t0)).zip(src(f0));
                    for (((d, &c), &t), &f) in it {
                        let m = c.lsb_mask();
                        *d = (t & m) | (f & !m);
                    }
                } else {
                    for l in 0..lanes {
                        let pick = if bits[c0 + l] & W::from(true) != W::ZERO { t0 } else { f0 };
                        bits[d0 + l] = bits[pick + l];
                    }
                }
            }
            Instr::Slice { dst, a, lo, mask } => {
                let m = W::from_u128(mask);
                row1(bits, dst, a, lanes, |x, _| (x >> lo) & m);
            }
            Instr::CatBits { dst, a, b, shift, mask } => {
                let m = W::from_u128(mask);
                row2(bits, dst, a, b, lanes, |x, y| ((x << shift) | y) & m);
            }
            Instr::Prim1 { op, dst, a, p0, p1 } => {
                let (d0, a0) = (at(dst), at(a));
                for l in 0..lanes {
                    let va = EvalValue {
                        bits: bits[a0 + l].to_u128(),
                        width: width[a0 + l],
                        signed: signed[a0 + l],
                    };
                    let r = apply_prim(op, va, None, &[p0, p1]);
                    bits[d0 + l] = W::from_u128(r.bits);
                    width[d0 + l] = r.width;
                    signed[d0 + l] = r.signed;
                }
            }
            Instr::Prim2 { op, dst, a, b } => {
                let (d0, a0, b0) = (at(dst), at(a), at(b));
                for l in 0..lanes {
                    let va = EvalValue {
                        bits: bits[a0 + l].to_u128(),
                        width: width[a0 + l],
                        signed: signed[a0 + l],
                    };
                    let vb = EvalValue {
                        bits: bits[b0 + l].to_u128(),
                        width: width[b0 + l],
                        signed: signed[b0 + l],
                    };
                    let r = apply_prim(op, va, Some(vb), &[]);
                    bits[d0 + l] = W::from_u128(r.bits);
                    width[d0 + l] = r.width;
                    signed[d0 + l] = r.signed;
                }
            }
            Instr::Mux { dst, c, t, f } => {
                let (d0, c0, t0, f0) = (at(dst), at(c), at(t), at(f));
                for l in 0..lanes {
                    let pick = if bits[c0 + l] & W::from(true) != W::ZERO { t0 } else { f0 };
                    bits[d0 + l] = bits[pick + l];
                    width[d0 + l] = width[pick + l];
                    signed[d0 + l] = signed[pick + l];
                }
            }
        }
    }
}

/// Lane-0 view: a 1-lane batch is a drop-in [`SimEngine`]; with more lanes the trait
/// methods address lane 0 while `step`/`eval` still advance the whole batch in
/// lockstep.
impl SimEngine for BatchedSimulator {
    fn poke(&mut self, name: &str, value: u128) -> Result<(), SimError> {
        BatchedSimulator::poke(self, 0, name, value)
    }

    fn peek(&self, name: &str) -> Result<u128, SimError> {
        BatchedSimulator::peek(self, 0, name)
    }

    fn eval(&mut self) -> Result<(), SimError> {
        BatchedSimulator::eval(self);
        Ok(())
    }

    fn step(&mut self) -> Result<(), SimError> {
        BatchedSimulator::step(self);
        Ok(())
    }

    fn step_clock(&mut self, domain: &str) -> Result<(), SimError> {
        BatchedSimulator::step_clock(self, domain)
    }

    fn step_clocks(&mut self, domains: &[&str]) -> Result<(), SimError> {
        BatchedSimulator::step_clocks(self, domains)
    }

    fn clock_domains(&self) -> Vec<String> {
        self.tape.domains.clone()
    }

    fn cycles(&self) -> u64 {
        BatchedSimulator::cycles(self)
    }

    fn outputs(&self) -> Vec<(String, u128)> {
        BatchedSimulator::outputs(self, 0)
    }

    fn has_reset(&self) -> bool {
        self.tape.has_reset
    }

    fn peek_mem(&self, mem: &str, addr: u128) -> Result<u128, SimError> {
        BatchedSimulator::peek_mem(self, 0, mem, addr)
    }

    fn poke_mem(&mut self, mem: &str, addr: u128, value: u128) -> Result<(), SimError> {
        BatchedSimulator::poke_mem(self, 0, mem, addr, value)
    }

    fn mem_names(&self) -> Vec<String> {
        self.tape.mems.iter().map(|m| m.name.clone()).collect()
    }

    fn mem_depth(&self, mem: &str) -> Option<usize> {
        self.tape.mems.iter().find(|m| m.name == mem).map(|m| m.depth as usize)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compiled::CompiledSimulator;
    use rechisel_firrtl::lower_circuit;
    use rechisel_hcl::prelude::*;

    fn counter_netlist() -> Netlist {
        let mut m = ModuleBuilder::new("Counter");
        let en = m.input("en", Type::bool());
        let out = m.output("out", Type::uint(8));
        let count = m.reg_init("count", Type::uint(8), &Signal::lit_w(0, 8));
        m.when(&en, |m| {
            let next = count.add(&Signal::lit_w(1, 8)).bits(7, 0);
            m.connect(&count, &next);
        });
        m.connect(&out, &count);
        lower_circuit(&m.into_circuit()).unwrap()
    }

    fn ram_netlist() -> Netlist {
        let mut m = ModuleBuilder::new("Ram");
        let we = m.input("we", Type::bool());
        let addr = m.input("addr", Type::uint(2));
        let wdata = m.input("wdata", Type::uint(8));
        let out = m.output("out", Type::uint(8));
        let mem = m.mem("store", Type::uint(8), 4);
        m.when(&we, |m| m.mem_write(&mem, &addr, &wdata));
        m.connect(&out, &mem.read(&addr));
        lower_circuit(&m.into_circuit()).unwrap()
    }

    #[test]
    fn lanes_diverge_under_different_pokes() {
        let mut sim = BatchedSimulator::new(&counter_netlist(), 4).unwrap();
        sim.reset(2).unwrap();
        for lane in 0..4 {
            sim.poke(lane, "en", u128::from(lane % 2 == 0)).unwrap();
        }
        sim.step_n(7);
        assert_eq!(sim.peek(0, "out").unwrap(), 7);
        assert_eq!(sim.peek(1, "out").unwrap(), 0);
        assert_eq!(sim.peek(2, "out").unwrap(), 7);
        assert_eq!(sim.peek(3, "out").unwrap(), 0);
        assert_eq!(sim.cycles(), 9);
    }

    #[test]
    fn every_lane_matches_a_solo_compiled_run() {
        let netlist = counter_netlist();
        let lanes = 8;
        let mut batch = BatchedSimulator::new(&netlist, lanes).unwrap();
        let mut solos: Vec<CompiledSimulator> =
            (0..lanes).map(|_| CompiledSimulator::new(&netlist).unwrap()).collect();
        batch.reset(2).unwrap();
        for solo in &mut solos {
            solo.reset(2).unwrap();
        }
        // A different en schedule per lane, varied over time.
        for t in 0..12u64 {
            for (lane, solo) in solos.iter_mut().enumerate() {
                let en = u128::from((t + lane as u64).is_multiple_of(lane as u64 + 2));
                batch.poke(lane, "en", en).unwrap();
                solo.poke("en", en).unwrap();
            }
            batch.step();
            for solo in &mut solos {
                solo.step();
            }
            for (lane, solo) in solos.iter().enumerate() {
                assert_eq!(batch.peek(lane, "out").unwrap(), solo.peek("out").unwrap());
                assert_eq!(batch.outputs(lane), solo.outputs());
            }
        }
    }

    #[test]
    fn memory_lanes_are_independent() {
        let mut sim = BatchedSimulator::new(&ram_netlist(), 3).unwrap();
        sim.poke_all("we", 1).unwrap();
        for lane in 0..3 {
            sim.poke(lane, "addr", 2).unwrap();
            sim.poke(lane, "wdata", 0x10 + lane as u128).unwrap();
        }
        sim.step();
        for lane in 0..3 {
            assert_eq!(sim.peek_mem(lane, "store", 2).unwrap(), 0x10 + lane as u128);
            assert_eq!(sim.peek(lane, "out").unwrap(), 0x10 + lane as u128);
        }
        // Direct backdoor pokes stay lane-local too.
        sim.poke_mem(1, "store", 0, 0xAB).unwrap();
        assert_eq!(sim.peek_mem(1, "store", 0).unwrap(), 0xAB);
        assert_eq!(sim.peek_mem(0, "store", 0).unwrap(), 0);
        assert_eq!(sim.peek_mem(2, "store", 0).unwrap(), 0);
    }

    #[test]
    fn poke_and_mem_validation_errors_match_compiled() {
        let mut sim = BatchedSimulator::new(&ram_netlist(), 2).unwrap();
        assert!(matches!(sim.poke(1, "ghost", 0), Err(SimError::NoSuchPort(_))));
        assert!(matches!(
            sim.poke(0, "wdata", 0x100),
            Err(SimError::ValueTooWide { width: 8, value: 0x100, .. })
        ));
        assert!(matches!(sim.peek_mem(0, "ghost", 0), Err(SimError::NoSuchMem(_))));
        assert!(matches!(
            sim.peek_mem(1, "store", 4),
            Err(SimError::MemAddrOutOfRange { depth: 4, addr: 4, .. })
        ));
        assert!(matches!(
            sim.poke_mem(1, "store", 0, 0x1FF),
            Err(SimError::MemValueTooWide { width: 8, value: 0x1FF, .. })
        ));
    }

    #[test]
    #[should_panic(expected = "lane 2 out of range")]
    fn out_of_range_lane_panics() {
        let mut sim = BatchedSimulator::new(&counter_netlist(), 2).unwrap();
        let _ = sim.poke(2, "en", 1);
    }

    #[test]
    fn sync_read_taint_is_reported_per_lane() {
        let mut m = ModuleBuilder::new("SyncRam");
        let addr = m.input("addr", Type::uint(2));
        let out = m.output("out", Type::uint(8));
        let mem = m.mem("store", Type::uint(8), 4);
        m.connect(&out, &mem.read_sync(&addr));
        let netlist = lower_circuit(&m.into_circuit()).unwrap();

        let mut sim = BatchedSimulator::new(&netlist, 2).unwrap();
        for lane in 0..2 {
            assert!(matches!(sim.peek(lane, "out"), Err(SimError::SyncReadBeforeClock { .. })));
        }
        sim.step();
        for lane in 0..2 {
            assert!(sim.peek(lane, "out").is_ok());
        }
    }

    #[test]
    fn lane_zero_view_implements_sim_engine() {
        let netlist = counter_netlist();
        let mut batch = BatchedSimulator::new(&netlist, 3).unwrap();
        let engine: &mut dyn SimEngine = &mut batch;
        engine.reset(2).unwrap();
        engine.poke("en", 1).unwrap();
        for _ in 0..4 {
            engine.step().unwrap();
        }
        assert_eq!(engine.peek("out").unwrap(), 4);
        assert_eq!(engine.outputs(), vec![("out".to_string(), 4)]);
        assert!(engine.has_reset());
        // Lockstep: the other lanes stepped too (en stayed 0 there).
        assert_eq!(batch.peek(1, "out").unwrap(), 0);
        assert_eq!(batch.cycles(), 6);
    }
}
