//! The compiled execution engine: a levelized instruction tape.
//!
//! [`Tape::compile`] walks a lowered [`Netlist`] **once** and flattens every
//! combinational definition and register next-state function into a dense instruction
//! program:
//!
//! * state is a slot-indexed `Vec` (layout fixed by
//!   [`Netlist::slot_assignment`]) instead of a name-keyed map — no hashing, no string
//!   allocation per evaluation;
//! * every operand is a pre-resolved slot index; literals are pooled into constant
//!   slots that are written once at construction and never touched again;
//! * masks and result metadata for named stores are pre-computed at compile time;
//! * registers get a commit list applied after all next-states are staged, preserving
//!   the simultaneous-update semantics of the interpreter.
//!
//! Per cycle, [`CompiledSimulator::step`] therefore executes a flat `for` loop over
//! copy-type instructions — the generated-kernel idea of the paper's throughput story
//! applied to the Simulator tool. Instruction semantics are shared with the
//! interpreter through [`crate::eval::apply_prim`], and the two engines are pinned
//! identical by differential fuzzing (see `rechisel-benchsuite`).

use std::collections::BTreeMap;
use std::sync::Arc;

use rechisel_firrtl::ir::{Direction, Expression, PrimOp};
use rechisel_firrtl::lower::{Netlist, SignalInfo};
use rechisel_firrtl::Fingerprint;

use crate::eval::{apply_prim, mask, min_width, EvalError, EvalValue};
use crate::simulator::SimError;

/// Physical metadata of a value: its width and signed interpretation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct Meta {
    pub(crate) width: u32,
    pub(crate) signed: bool,
}

impl Meta {
    fn of(v: EvalValue) -> Self {
        Meta { width: v.width, signed: v.signed }
    }

    pub(crate) fn mask(self) -> u128 {
        mask(u128::MAX, self.width)
    }

    /// Left-shift amount that sign-extends a `width`-bit value through bit 127 (0 when
    /// no extension is needed — unsigned, width 0, or already 128 bits wide).
    pub(crate) fn sext_shift(self) -> u32 {
        if self.signed && self.width > 0 && self.width < 128 {
            128 - self.width
        } else {
            0
        }
    }
}

/// Comparison selector for the specialized compare instruction.
#[derive(Debug, Clone, Copy)]
pub(crate) enum CmpKind {
    Eq,
    Neq,
    Lt,
    Leq,
    Gt,
    Geq,
}

/// One executable instruction. Operands are slot indices into the state vector.
///
/// Two tiers share the same state:
///
/// * **Specialized** variants are emitted when every operand's metadata is known at
///   compile time; they carry pre-computed masks and sign-extension shifts and touch
///   only the `bits` of their destination slot (its metadata is fixed at
///   construction).
/// * **Generic** variants (`Prim1`/`Prim2`/`Mux`) execute the shared
///   [`apply_prim`] kernel on full [`EvalValue`]s. They cover the rare
///   dynamic-metadata cases — mux arms of different widths, `dshl` (whose result
///   width depends on the shift *value*) — and every seldom-used operation.
#[derive(Debug, Clone, Copy)]
pub(crate) enum Instr {
    /// `bits[dst] = bits[src] & mask` — named-slot commits, plain copies.
    CopyMask { dst: u32, src: u32, mask: u128 },
    /// `bits[dst] = !bits[a] & mask`
    Not { dst: u32, a: u32, mask: u128 },
    /// `bits[dst] = bits[a] & bits[b]`
    And { dst: u32, a: u32, b: u32 },
    /// `bits[dst] = bits[a] | bits[b]`
    Or { dst: u32, a: u32, b: u32 },
    /// `bits[dst] = bits[a] ^ bits[b]`
    Xor { dst: u32, a: u32, b: u32 },
    /// Sign-extending add/sub with a pre-computed result mask.
    AddSub { dst: u32, a: u32, b: u32, sa: u32, sb: u32, mask: u128, sub: bool },
    /// Comparison; `signed` selects i128 ordering (`sa`/`sb` pre-extend operands).
    Cmp { dst: u32, a: u32, b: u32, sa: u32, sb: u32, kind: CmpKind, signed: bool },
    /// Bits-only select — legal when both arm metadatas are statically equal.
    MuxBits { dst: u32, c: u32, t: u32, f: u32 },
    /// `bits(hi, lo)` extract: `bits[dst] = (bits[a] >> lo) & mask`.
    Slice { dst: u32, a: u32, lo: u32, mask: u128 },
    /// `cat(a, b)`: `bits[dst] = ((bits[a] << shift) | bits[b]) & mask`.
    CatBits { dst: u32, a: u32, b: u32, shift: u32, mask: u128 },
    /// Generic unary: `state[dst] = apply_prim(op, state[a], None, [p0, p1])`
    Prim1 { op: PrimOp, dst: u32, a: u32, p0: i64, p1: i64 },
    /// Generic binary: `state[dst] = apply_prim(op, state[a], Some(state[b]), [])`
    Prim2 { op: PrimOp, dst: u32, a: u32, b: u32 },
    /// Generic select: `state[dst] = if state[c].bits & 1 != 0 { state[t] } else { state[f] }`
    Mux { dst: u32, c: u32, t: u32, f: u32 },
    /// Combinational memory read: `bits[dst] = mem[base + bits[addr]]` when the address
    /// is below `depth`, 0 otherwise. Backing-store words are pre-masked at commit, so
    /// the destination (whose metadata is pinned to the word shape) takes bits only.
    MemRead { dst: u32, addr: u32, base: u32, depth: u32 },
}

/// Sign-extends `bits` (pre-masked to its width) through bit 127.
#[inline(always)]
pub(crate) fn ext(bits: u128, shift: u32) -> i128 {
    ((bits << shift) as i128) >> shift
}

/// A register commit: copy the staged next-state into the register slot, masked to the
/// register's width. `domain` indexes [`Tape::domains`]; a filtered step applies only
/// the commits of the edged domain.
#[derive(Debug, Clone, Copy)]
pub(crate) struct Commit {
    pub(crate) reg: u32,
    pub(crate) staged: u32,
    pub(crate) mask: u128,
    pub(crate) domain: u32,
}

/// A staged memory write: when `bits[en] & 1` is set and `bits[addr] < depth`, store
/// the port's merged word at `mem[base + bits[addr]]`. Applied before register
/// commits (all operand slots still hold pre-edge values), in port-declaration order
/// with whole-word stores — a same-cycle collision resolves to the last port, exactly
/// like the last nonblocking assignment winning in the emitted Verilog.
#[derive(Debug, Clone, Copy)]
pub(crate) struct MemCommit {
    pub(crate) base: u32,
    pub(crate) depth: u32,
    pub(crate) addr: u32,
    pub(crate) en: u32,
    pub(crate) val: u32,
    pub(crate) mask: u128,
    /// For lane-masked ports, `(lane slot, pre-edge word slot)`: the merged word is
    /// `(old & !lane) | (value & lane)`, where `old` was staged by a `MemRead`
    /// instruction in the register program (so it reads PRE-edge contents, mirroring
    /// the interpreter and the Verilog nonblocking read).
    pub(crate) lane: Option<(u32, u32)>,
    /// Index into [`Tape::domains`] of the port's write clock.
    pub(crate) domain: u32,
}

/// Backing-store layout and word metadata of one memory in a [`Tape`].
#[derive(Debug, Clone)]
pub(crate) struct TapeMem {
    pub(crate) name: String,
    pub(crate) base: u32,
    pub(crate) depth: u32,
    pub(crate) width: u32,
}

/// An input port's pre-resolved poke target.
#[derive(Debug, Clone)]
pub(crate) struct InPort {
    pub(crate) name: String,
    pub(crate) slot: u32,
    pub(crate) width: u32,
    pub(crate) signed: bool,
}

/// A netlist compiled to a flat, slot-indexed instruction program.
///
/// A tape is immutable and shareable: wrap it in an [`Arc`] and hand clones to
/// [`CompiledSimulator::from_tape`] to run many simulations of the same design without
/// recompiling (the benchmark suite caches one tape per case this way).
#[derive(Debug)]
pub struct Tape {
    pub(crate) name: String,
    /// Initial state: named slots (zeroed, with their signal metadata), then the
    /// constant pool, then temporaries.
    pub(crate) init: Vec<EvalValue>,
    /// Named signal -> slot, for peeks.
    pub(crate) index: BTreeMap<String, u32>,
    /// Combinational program in evaluation order (one `Store` per def).
    pub(crate) comb: Vec<Instr>,
    /// Per-def `(start, end)` ranges into `comb`, in [`Netlist::defs`] order. Each
    /// def's expression compiles to a contiguous block ending in its named-slot
    /// `CopyMask`; [`Tape::patch`] splices replacement blocks over these ranges.
    pub(crate) comb_spans: Vec<(u32, u32)>,
    /// Register next-state program (writes staging slots only).
    pub(crate) reg_program: Vec<Instr>,
    /// Register commit list, applied after the whole `reg_program` ran.
    pub(crate) commits: Vec<Commit>,
    /// Memory write commits, applied (before register commits) after `reg_program`.
    pub(crate) mem_commits: Vec<MemCommit>,
    /// Backing-store layout, one entry per memory in declaration order.
    pub(crate) mems: Vec<TapeMem>,
    /// Initial backing-store image (one word per entry, layout as in `mems`):
    /// declared init words pre-masked to the word width, zero elsewhere.
    pub(crate) mem_init: Vec<u128>,
    /// Clock domains (mangled clock nets), first-appearance order — registers in
    /// declaration order, then memory write ports. Commit entries index into this.
    pub(crate) domains: Vec<String>,
    /// Signal -> set of implicit sync-read registers it combinationally depends on.
    /// A signal cannot be peeked while any of its sources is still uncaptured (its
    /// own clock domain has not ticked yet).
    pub(crate) sync_sources: BTreeMap<String, std::collections::BTreeSet<String>>,
    /// Implicit sync-read registers with the index of their clock domain: the initial
    /// `uncaptured` set of a fresh simulator, drained per-domain as edges happen.
    pub(crate) sync_regs: Vec<(String, u32)>,
    pub(crate) inputs: BTreeMap<String, InPort>,
    pub(crate) outputs: Vec<(String, u32)>,
    pub(crate) has_reset: bool,
    /// Per-slot static shape, `None` for dynamically-shaped slots (generic
    /// instruction results whose width tracks a run-time value). Named slots and
    /// constants are always `Some`; the native codegen consumes this to bake widths
    /// and sign-extension shifts in as literals.
    pub(crate) metas: Vec<Option<Meta>>,
    /// Constant pool: `(bits, width, signed)` -> slot. Persisted so [`Tape::patch`]
    /// reuses existing constant slots instead of accreting duplicates.
    pub(crate) consts: BTreeMap<(u128, u32, bool), u32>,
    /// Order-invariant structural digest of the source netlist
    /// ([`Netlist::structural_digest`]). A patched tape carries the digest of the
    /// *patched* netlist, so equal digests mean behaviourally identical tapes
    /// regardless of which path built them.
    pub(crate) source_digest: Fingerprint,
}

impl Tape {
    /// Compiles a netlist into an instruction tape.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Eval`] for dangling references or non-ground expression
    /// forms — the conditions the interpreter reports lazily at evaluation time.
    pub fn compile(netlist: &Netlist) -> Result<Self, SimError> {
        Builder::new(netlist).build()
    }

    /// Order-invariant structural digest of the netlist this tape was compiled (or
    /// patched) from. Two tapes with equal digests simulate identical circuits.
    pub fn source_digest(&self) -> Fingerprint {
        self.source_digest
    }

    /// Rebuilds only the combinational blocks of `changed_defs` against `netlist`,
    /// splicing every other def's instructions verbatim from this tape.
    ///
    /// `netlist` must be this tape's source netlist with only the expressions of
    /// `changed_defs` rewritten — same module name, same defs in the same order,
    /// same registers, memories and ports. The sequential program (register
    /// next-state staging, commits, memory write ports) is reused unchanged; the
    /// sync-read source map and [`Tape::source_digest`] are recomputed from
    /// `netlist`, so a patched tape is indistinguishable from a fresh
    /// [`Tape::compile`] of the patched netlist apart from slot numbering (the old
    /// replaced temporaries remain as dead slots; new ones append at the end).
    ///
    /// # Errors
    ///
    /// Returns [`SimError::TapeMismatch`] when `netlist` does not structurally
    /// match this tape (the caller should fall back to [`Tape::compile`]), or
    /// [`SimError::Eval`] when a replacement expression does not compile.
    pub fn patch(&self, netlist: &Netlist, changed_defs: &[String]) -> Result<Self, SimError> {
        if netlist.name != self.name {
            return Err(SimError::TapeMismatch(format!(
                "module name {:?} != tape module {:?}",
                netlist.name, self.name
            )));
        }
        if netlist.defs.len() != self.comb_spans.len() {
            return Err(SimError::TapeMismatch(format!(
                "{} defs vs {} compiled spans",
                netlist.defs.len(),
                self.comb_spans.len()
            )));
        }
        if netlist.regs.len() != self.commits.len() {
            return Err(SimError::TapeMismatch(format!(
                "{} registers vs {} commits",
                netlist.regs.len(),
                self.commits.len()
            )));
        }
        if netlist.mems.len() != self.mems.len()
            || netlist.mems.iter().zip(&self.mems).any(|(a, b)| a.name != b.name)
        {
            return Err(SimError::TapeMismatch("memory set differs".to_string()));
        }
        let changed: std::collections::BTreeSet<&str> =
            changed_defs.iter().map(String::as_str).collect();
        for name in &changed {
            if !netlist.defs.iter().any(|d| d.name == *name) {
                return Err(SimError::TapeMismatch(format!("changed def {name:?} is not a def")));
            }
        }

        let mut b = Builder::resume(netlist, self);
        let mut comb = Vec::with_capacity(self.comb.len());
        let mut comb_spans = Vec::with_capacity(self.comb_spans.len());
        for (def, &(start, end)) in netlist.defs.iter().zip(&self.comb_spans) {
            let new_start = comb.len() as u32;
            let dst = *b.index.get(&def.name).ok_or_else(|| {
                SimError::TapeMismatch(format!("def {:?} has no slot in the tape", def.name))
            })?;
            if changed.contains(def.name.as_str()) {
                let src = b.compile_expr(&def.expr, &mut comb)?;
                comb.push(Instr::CopyMask { dst, src, mask: mask(u128::MAX, def.info.width) });
            } else {
                // Instructions address absolute slots, so a verbatim copy stays
                // correct at any position. The final CopyMask of the span must
                // target this def's slot — a cheap witness that the def order of
                // `netlist` matches the tape's.
                let span = &self.comb[start as usize..end as usize];
                match span.last() {
                    Some(&Instr::CopyMask { dst: span_dst, .. }) if span_dst == dst => {}
                    _ => {
                        return Err(SimError::TapeMismatch(format!(
                            "def {:?} does not line up with its compiled span",
                            def.name
                        )));
                    }
                }
                comb.extend_from_slice(span);
            }
            comb_spans.push((new_start, comb.len() as u32));
        }

        Ok(Tape {
            name: self.name.clone(),
            init: b.init,
            index: b.index,
            comb,
            comb_spans,
            reg_program: self.reg_program.clone(),
            commits: self.commits.clone(),
            mem_commits: self.mem_commits.clone(),
            mems: b.mems,
            mem_init: self.mem_init.clone(),
            domains: self.domains.clone(),
            // Recomputed, not copied: a rewired output may add or drop sync-read
            // taint, and a stale map would resurrect SyncReadBeforeClock warnings
            // for reads the patched circuit no longer performs.
            sync_sources: netlist.sync_read_sources(),
            sync_regs: self.sync_regs.clone(),
            inputs: self.inputs.clone(),
            outputs: self.outputs.clone(),
            has_reset: self.has_reset,
            metas: b.metas,
            consts: b.consts,
            source_digest: netlist.structural_digest(),
        })
    }

    /// The module name of the compiled netlist.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Total instructions executed per [`CompiledSimulator::step`] (the combinational
    /// program runs twice: once before and once after the register commit).
    pub fn instructions_per_cycle(&self) -> usize {
        2 * self.comb.len() + self.reg_program.len() + self.commits.len() + self.mem_commits.len()
    }

    /// Number of state slots (named signals + constants + temporaries).
    pub fn slot_count(&self) -> usize {
        self.init.len()
    }

    /// Total backing-store words across all memories.
    pub fn mem_word_count(&self) -> usize {
        self.mem_init.len()
    }
}

/// Compile-time state for building a [`Tape`].
struct Builder<'n> {
    netlist: &'n Netlist,
    index: BTreeMap<String, u32>,
    init: Vec<EvalValue>,
    /// Static metadata per slot; `None` marks slots whose width/signedness can vary at
    /// run time (mux arms of different shapes, `dshl` results, and their descendants).
    metas: Vec<Option<Meta>>,
    consts: BTreeMap<(u128, u32, bool), u32>,
    /// Backing-store layout, one entry per memory (declaration order, packed).
    mems: Vec<TapeMem>,
    /// Memory name -> index into `mems`, pre-resolved for read-port compilation.
    mem_index: BTreeMap<String, u32>,
}

impl<'n> Builder<'n> {
    fn new(netlist: &'n Netlist) -> Self {
        let slots = netlist.slot_assignment();
        let mut index = BTreeMap::new();
        let mut init = Vec::with_capacity(slots.len());
        let mut metas = Vec::with_capacity(slots.len());
        for (slot, name) in slots.iter() {
            // The interpreter defaults missing metadata to a 64-bit unsigned signal;
            // mirror that so the engines cannot diverge even on odd netlists.
            let info = netlist.signal(name).unwrap_or(SignalInfo {
                width: 64,
                signed: false,
                is_clock: false,
            });
            index.insert(name.to_string(), slot);
            let zero = EvalValue::new(0, info.width, info.signed);
            init.push(zero);
            // Named slots are only ever written by masked commits (and pokes), so
            // their metadata is pinned to the signal's physical properties.
            metas.push(Some(Meta::of(zero)));
        }
        let mut mems = Vec::with_capacity(netlist.mems.len());
        let mut mem_index = BTreeMap::new();
        for m in &netlist.mems {
            let layout = slots.mem_slot_of(&m.name).expect("memory is in the slot assignment");
            mem_index.insert(m.name.clone(), mems.len() as u32);
            mems.push(TapeMem {
                name: m.name.clone(),
                base: layout.base,
                depth: layout.depth,
                width: m.info.width,
            });
        }
        Self { netlist, index, init, metas, consts: BTreeMap::new(), mems, mem_index }
    }

    /// Allocates a temporary slot. Slots holding statically-shaped results carry their
    /// metadata in the initial state (specialized instructions write bits only);
    /// dynamically-shaped slots get full [`EvalValue`] writes from generic
    /// instructions, so their initial metadata is immaterial.
    fn temp(&mut self, meta: Option<Meta>) -> u32 {
        let slot = self.init.len() as u32;
        let m = meta.unwrap_or(Meta { width: 1, signed: false });
        self.init.push(EvalValue::new(0, m.width, m.signed));
        self.metas.push(meta);
        slot
    }

    fn constant(&mut self, value: EvalValue) -> u32 {
        let init = &mut self.init;
        let metas = &mut self.metas;
        *self.consts.entry((value.bits, value.width, value.signed)).or_insert_with(|| {
            let slot = init.len() as u32;
            init.push(value);
            metas.push(Some(Meta::of(value)));
            slot
        })
    }

    fn unsupported(expr: &Expression) -> SimError {
        SimError::Eval(EvalError::UnsupportedExpression(expr.to_string()))
    }

    /// The statically-known result metadata of `op` over statically-shaped operands.
    ///
    /// Every operation's result width and signedness depend only on the operand
    /// shapes and the static parameters — with one exception, `dshl`, whose result
    /// width tracks the shift *value*; it reports `None` (dynamic).
    fn static_result_meta(op: PrimOp, a: Meta, b: Option<Meta>, params: &[i64]) -> Option<Meta> {
        if op == PrimOp::Dshl {
            return None;
        }
        let probe = apply_prim(
            op,
            EvalValue::new(0, a.width, a.signed),
            b.map(|m| EvalValue::new(0, m.width, m.signed)),
            params,
        );
        Some(Meta::of(probe))
    }

    /// Emits the best instruction for a binary operation, preferring the specialized
    /// bits-only forms when both operand shapes are static.
    fn emit_prim2(&mut self, op: PrimOp, a: u32, b: u32, out: &mut Vec<Instr>) -> u32 {
        use PrimOp::*;
        let (am, bm) = (self.metas[a as usize], self.metas[b as usize]);
        if let (Some(am), Some(bm)) = (am, bm) {
            if let Some(rm) = Self::static_result_meta(op, am, Some(bm), &[]) {
                let dst = self.temp(Some(rm));
                let (sa, sb) = (am.sext_shift(), bm.sext_shift());
                let signed = am.signed || bm.signed;
                let instr = match op {
                    And => Some(Instr::And { dst, a, b }),
                    Or => Some(Instr::Or { dst, a, b }),
                    Xor => Some(Instr::Xor { dst, a, b }),
                    Add => Some(Instr::AddSub { dst, a, b, sa, sb, mask: rm.mask(), sub: false }),
                    Sub => Some(Instr::AddSub { dst, a, b, sa, sb, mask: rm.mask(), sub: true }),
                    Eq => Some(Instr::Cmp { dst, a, b, sa, sb, kind: CmpKind::Eq, signed }),
                    Neq => Some(Instr::Cmp { dst, a, b, sa, sb, kind: CmpKind::Neq, signed }),
                    Lt => Some(Instr::Cmp { dst, a, b, sa, sb, kind: CmpKind::Lt, signed }),
                    Leq => Some(Instr::Cmp { dst, a, b, sa, sb, kind: CmpKind::Leq, signed }),
                    Gt => Some(Instr::Cmp { dst, a, b, sa, sb, kind: CmpKind::Gt, signed }),
                    Geq => Some(Instr::Cmp { dst, a, b, sa, sb, kind: CmpKind::Geq, signed }),
                    Cat if bm.width < 128 => {
                        Some(Instr::CatBits { dst, a, b, shift: bm.width, mask: rm.mask() })
                    }
                    _ => None,
                };
                out.push(instr.unwrap_or(Instr::Prim2 { op, dst, a, b }));
                return dst;
            }
            // dshl: operands static but the result shape is value-dependent.
            let dst = self.temp(None);
            out.push(Instr::Prim2 { op, dst, a, b });
            return dst;
        }
        let dst = self.temp(None);
        out.push(Instr::Prim2 { op, dst, a, b });
        dst
    }

    /// Emits the best instruction for a unary operation.
    fn emit_prim1(&mut self, op: PrimOp, a: u32, p0: i64, p1: i64, out: &mut Vec<Instr>) -> u32 {
        use PrimOp::*;
        if let Some(am) = self.metas[a as usize] {
            if let Some(rm) = Self::static_result_meta(op, am, None, &[p0, p1]) {
                let dst = self.temp(Some(rm));
                let instr = match op {
                    Not => Some(Instr::Not { dst, a, mask: rm.mask() }),
                    Bits if p1.max(0) < 128 => {
                        Some(Instr::Slice { dst, a, lo: p1.max(0) as u32, mask: rm.mask() })
                    }
                    // A static right shift of an unsigned operand is a slice from
                    // bit p0 (the result width already saturates at max(w-n, 1)).
                    // Signed operands need an arithmetic shift and stay generic.
                    Shr if !am.signed && p0.max(0) < 128 => {
                        Some(Instr::Slice { dst, a, lo: p0.max(0) as u32, mask: rm.mask() })
                    }
                    // A static left shift is concatenation with an empty low part:
                    // shift the operand into place and mask to the saturating result
                    // width. Over-shifts of 128+ stay generic (they zero the word).
                    Shl if p0.max(0) < 128 => {
                        let zero = self.constant(EvalValue::new(0, 1, false));
                        let shift = p0.max(0) as u32;
                        Some(Instr::CatBits { dst, a, b: zero, shift, mask: rm.mask() })
                    }
                    // Reinterpreting casts keep the bit pattern when the width is
                    // unchanged; the metadata difference is already in the slot shape.
                    AsUInt | AsSInt => Some(Instr::CopyMask { dst, src: a, mask: rm.mask() }),
                    _ => None,
                };
                out.push(instr.unwrap_or(Instr::Prim1 { op, dst, a, p0, p1 }));
                return dst;
            }
        }
        let dst = self.temp(None);
        out.push(Instr::Prim1 { op, dst, a, p0, p1 });
        dst
    }

    /// Compiles an expression, returning the slot holding its value.
    fn compile_expr(&mut self, expr: &Expression, out: &mut Vec<Instr>) -> Result<u32, SimError> {
        match expr {
            Expression::Ref(name) => self
                .index
                .get(name)
                .copied()
                .ok_or_else(|| SimError::Eval(EvalError::UnknownSignal(name.clone()))),
            Expression::UIntLiteral { value, width } => {
                let w = width.unwrap_or_else(|| min_width(*value));
                Ok(self.constant(EvalValue::new(*value, w, false)))
            }
            Expression::SIntLiteral { value, width } => {
                let w = width.unwrap_or(64);
                Ok(self.constant(EvalValue::new(*value as u128, w, true)))
            }
            Expression::Mux { cond, tval, fval } => {
                let c = self.compile_expr(cond, out)?;
                let t = self.compile_expr(tval, out)?;
                let f = self.compile_expr(fval, out)?;
                // Bits-only select when both arms have the same static shape; the
                // generic form otherwise (the selected arm's metadata travels with
                // the value, exactly like the interpreter).
                let (tm, fm) = (self.metas[t as usize], self.metas[f as usize]);
                let dst = match (tm, fm) {
                    (Some(tm), Some(fm)) if tm == fm => {
                        let dst = self.temp(Some(tm));
                        out.push(Instr::MuxBits { dst, c, t, f });
                        dst
                    }
                    _ => {
                        let dst = self.temp(None);
                        out.push(Instr::Mux { dst, c, t, f });
                        dst
                    }
                };
                Ok(dst)
            }
            // Sequential reads are hoisted into implicit registers by lowering; a
            // surviving sync read means the netlist skipped lowering.
            Expression::MemRead { sync: true, .. } => Err(Self::unsupported(expr)),
            Expression::MemRead { mem, addr, sync: false, .. } => {
                let a = self.compile_expr(addr, out)?;
                let index = *self
                    .mem_index
                    .get(mem)
                    .ok_or_else(|| SimError::Eval(EvalError::UnknownSignal(mem.clone())))?;
                let info = self.netlist.mems[index as usize].info;
                let (base, depth) =
                    (self.mems[index as usize].base, self.mems[index as usize].depth);
                // Word metadata is static; stored words are pre-masked at commit, so
                // the read writes bits only.
                let dst = self.temp(Some(Meta { width: info.width, signed: info.signed }));
                out.push(Instr::MemRead { dst, addr: a, base, depth });
                Ok(dst)
            }
            Expression::Prim { op, args, params } => {
                if args.is_empty()
                    || (op.arity() == 2 && args.len() < 2)
                    || params.len() < op.param_count()
                {
                    return Err(Self::unsupported(expr));
                }
                let a = self.compile_expr(&args[0], out)?;
                if op.arity() == 2 {
                    let b = self.compile_expr(&args[1], out)?;
                    Ok(self.emit_prim2(*op, a, b, out))
                } else {
                    let p0 = params.first().copied().unwrap_or(0);
                    let p1 = params.get(1).copied().unwrap_or(0);
                    Ok(self.emit_prim1(*op, a, p0, p1, out))
                }
            }
            other => Err(Self::unsupported(other)),
        }
    }

    fn build(mut self) -> Result<Tape, SimError> {
        let mut comb = Vec::new();
        let mut comb_spans = Vec::with_capacity(self.netlist.defs.len());
        for def in &self.netlist.defs {
            let start = comb.len() as u32;
            let src = self.compile_expr(&def.expr, &mut comb)?;
            let dst = self.index[&def.name];
            let mask = mask(u128::MAX, def.info.width);
            comb.push(Instr::CopyMask { dst, src, mask });
            comb_spans.push((start, comb.len() as u32));
        }

        // Clock-domain table: every register and write-port clock resolves to an
        // index, so filtered steps compare a u32 instead of a string per commit.
        let domains = self.netlist.clock_domains();
        let domain_index = |clock: &str| -> u32 {
            domains.iter().position(|d| d == clock).expect("clock is in the domain table") as u32
        };

        let mut reg_program = Vec::new();
        let mut commits = Vec::new();
        let reg_slots: std::collections::BTreeSet<u32> =
            self.netlist.regs.iter().map(|r| self.index[&r.name]).collect();
        for reg in &self.netlist.regs {
            let next = self.compile_expr(&reg.next, &mut reg_program)?;
            let mut staged = match &reg.reset {
                None => next,
                Some((reset_expr, init_expr)) => {
                    let r = self.compile_expr(reset_expr, &mut reg_program)?;
                    let i = self.compile_expr(init_expr, &mut reg_program)?;
                    // Reset muxing only ever feeds the masked commit below, which
                    // reads bits alone — a bits-only select is exact here even when
                    // the init and next shapes differ.
                    let dst = self.temp(None);
                    reg_program.push(Instr::MuxBits { dst, c: r, t: i, f: next });
                    dst
                }
            };
            // A bare `Ref` next-state (e.g. `connect(b, a)` between registers) would
            // make `staged` alias a slot the commit loop itself mutates; sequential
            // commits would then read the already-updated value instead of the
            // pre-step one. Snapshot it into a temp during staging so every register
            // updates simultaneously, like the interpreter's two-phase commit.
            if reg_slots.contains(&staged) {
                let dst = self.temp(None);
                reg_program.push(Instr::CopyMask { dst, src: staged, mask: u128::MAX });
                staged = dst;
            }
            commits.push(Commit {
                reg: self.index[&reg.name],
                staged,
                mask: mask(u128::MAX, reg.info.width),
                domain: domain_index(&reg.clock),
            });
        }

        // Memory write ports: addr/enable/value/mask are staged alongside register
        // next-states; the commits run before the register commits, so every operand
        // slot still holds its pre-edge value (simultaneous-update semantics, like the
        // interpreter's two-phase step).
        let mut mem_commits = Vec::new();
        for (i, mem) in self.netlist.mems.iter().enumerate() {
            let (base, depth) = (self.mems[i].base, self.mems[i].depth);
            let word_mask = mask(u128::MAX, self.mems[i].width);
            for port in &mem.writes {
                let addr = self.compile_expr(&port.addr, &mut reg_program)?;
                let en = self.compile_expr(&port.enable, &mut reg_program)?;
                let val = self.compile_expr(&port.value, &mut reg_program)?;
                let lane = match &port.mask {
                    None => None,
                    Some(m) => {
                        let lane = self.compile_expr(m, &mut reg_program)?;
                        // Stage the PRE-edge word alongside the operands: the merge
                        // at commit time must read old data even if an earlier port
                        // already stored to the same word this cycle.
                        let word_info = self.netlist.mems[i].info;
                        let old = self
                            .temp(Some(Meta { width: word_info.width, signed: word_info.signed }));
                        reg_program.push(Instr::MemRead { dst: old, addr, base, depth });
                        Some((lane, old))
                    }
                };
                mem_commits.push(MemCommit {
                    base,
                    depth,
                    addr,
                    en,
                    val,
                    mask: word_mask,
                    lane,
                    domain: domain_index(&port.clock),
                });
            }
        }
        // Initial backing-store image: declared init words (pre-masked), zero padding.
        let mut mem_init = vec![0u128; self.mems.iter().map(|m| m.depth as usize).sum()];
        for (i, mem) in self.netlist.mems.iter().enumerate() {
            let base = self.mems[i].base as usize;
            let word_mask = mask(u128::MAX, self.mems[i].width);
            for (offset, word) in mem.init.iter().take(mem.depth).enumerate() {
                mem_init[base + offset] = word & word_mask;
            }
        }
        let sync_sources = self.netlist.sync_read_sources();
        let sync_regs = self
            .netlist
            .mems
            .iter()
            .flat_map(|m| m.sync_reads.iter())
            .map(|name| {
                let reg = self
                    .netlist
                    .regs
                    .iter()
                    .find(|r| &r.name == name)
                    .expect("sync-read register is in the register list");
                (name.clone(), domain_index(&reg.clock))
            })
            .collect();

        let inputs = self
            .netlist
            .ports
            .iter()
            .filter(|p| p.direction == Direction::Input)
            .map(|p| {
                (
                    p.name.clone(),
                    InPort {
                        name: p.name.clone(),
                        slot: self.index[&p.name],
                        width: p.info.width,
                        signed: p.info.signed,
                    },
                )
            })
            .collect();
        let outputs = self
            .netlist
            .ports
            .iter()
            .filter(|p| p.direction == Direction::Output)
            .map(|p| (p.name.clone(), self.index[&p.name]))
            .collect();
        let has_reset =
            self.netlist.ports.iter().any(|p| p.name == "reset" && p.direction == Direction::Input);

        Ok(Tape {
            name: self.netlist.name.clone(),
            init: self.init,
            index: self.index,
            comb,
            comb_spans,
            reg_program,
            commits,
            mem_commits,
            mems: self.mems,
            mem_init,
            domains,
            sync_sources,
            sync_regs,
            inputs,
            outputs,
            has_reset,
            metas: self.metas,
            consts: self.consts,
            source_digest: self.netlist.structural_digest(),
        })
    }

    /// Rebuilds compile-time state from a finished tape so [`Tape::patch`] can
    /// compile replacement expressions against the existing slot layout. New
    /// temporaries and constants append past the old state; the patched def's old
    /// temp slots become dead (initialised, never written) holes.
    fn resume(netlist: &'n Netlist, tape: &Tape) -> Self {
        let mut mem_index = BTreeMap::new();
        for (i, m) in tape.mems.iter().enumerate() {
            mem_index.insert(m.name.clone(), i as u32);
        }
        Self {
            netlist,
            index: tape.index.clone(),
            init: tape.init.clone(),
            metas: tape.metas.clone(),
            consts: tape.consts.clone(),
            mems: tape.mems.clone(),
            mem_index,
        }
    }
}

#[inline]
fn exec(instrs: &[Instr], state: &mut [EvalValue], mem: &[u128]) {
    for instr in instrs {
        match *instr {
            Instr::MemRead { dst, addr, base, depth } => {
                let a = state[addr as usize].bits;
                state[dst as usize].bits =
                    if a < u128::from(depth) { mem[(base + a as u32) as usize] } else { 0 };
            }
            Instr::CopyMask { dst, src, mask } => {
                state[dst as usize].bits = state[src as usize].bits & mask;
            }
            Instr::Not { dst, a, mask } => {
                state[dst as usize].bits = !state[a as usize].bits & mask;
            }
            Instr::And { dst, a, b } => {
                state[dst as usize].bits = state[a as usize].bits & state[b as usize].bits;
            }
            Instr::Or { dst, a, b } => {
                state[dst as usize].bits = state[a as usize].bits | state[b as usize].bits;
            }
            Instr::Xor { dst, a, b } => {
                state[dst as usize].bits = state[a as usize].bits ^ state[b as usize].bits;
            }
            Instr::AddSub { dst, a, b, sa, sb, mask, sub } => {
                let ea = ext(state[a as usize].bits, sa);
                let eb = ext(state[b as usize].bits, sb);
                let sum = if sub { ea.wrapping_sub(eb) } else { ea.wrapping_add(eb) };
                state[dst as usize].bits = sum as u128 & mask;
            }
            Instr::Cmp { dst, a, b, sa, sb, kind, signed } => {
                let (ba, bb) = (state[a as usize].bits, state[b as usize].bits);
                let hit = match kind {
                    // Equality always compares the per-operand signed interpretations
                    // (`as_i128`), mirroring the interpreter.
                    CmpKind::Eq => ext(ba, sa) == ext(bb, sb),
                    CmpKind::Neq => ext(ba, sa) != ext(bb, sb),
                    _ => {
                        let ord = if signed { ext(ba, sa).cmp(&ext(bb, sb)) } else { ba.cmp(&bb) };
                        match kind {
                            CmpKind::Lt => ord == std::cmp::Ordering::Less,
                            CmpKind::Leq => ord != std::cmp::Ordering::Greater,
                            CmpKind::Gt => ord == std::cmp::Ordering::Greater,
                            _ => ord != std::cmp::Ordering::Less,
                        }
                    }
                };
                state[dst as usize].bits = u128::from(hit);
            }
            Instr::MuxBits { dst, c, t, f } => {
                let pick = if state[c as usize].bits & 1 != 0 { t } else { f };
                state[dst as usize].bits = state[pick as usize].bits;
            }
            Instr::Slice { dst, a, lo, mask } => {
                state[dst as usize].bits = (state[a as usize].bits >> lo) & mask;
            }
            Instr::CatBits { dst, a, b, shift, mask } => {
                state[dst as usize].bits =
                    ((state[a as usize].bits << shift) | state[b as usize].bits) & mask;
            }
            Instr::Prim1 { op, dst, a, p0, p1 } => {
                state[dst as usize] = apply_prim(op, state[a as usize], None, &[p0, p1]);
            }
            Instr::Prim2 { op, dst, a, b } => {
                state[dst as usize] =
                    apply_prim(op, state[a as usize], Some(state[b as usize]), &[]);
            }
            Instr::Mux { dst, c, t, f } => {
                state[dst as usize] = if state[c as usize].bits & 1 != 0 {
                    state[t as usize]
                } else {
                    state[f as usize]
                };
            }
        }
    }
}

/// The compiled engine: executes a [`Tape`] with slot-indexed state.
///
/// # Example
///
/// ```
/// use std::sync::Arc;
/// use rechisel_hcl::prelude::*;
/// use rechisel_sim::{CompiledSimulator, Tape};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut m = ModuleBuilder::new("Counter");
/// let en = m.input("en", Type::bool());
/// let out = m.output("out", Type::uint(8));
/// let count = m.reg_init("count", Type::uint(8), &Signal::lit_w(0, 8));
/// m.when(&en, |m| m.connect(&count, &count.add(&Signal::lit_w(1, 8)).bits(7, 0)));
/// m.connect(&out, &count);
/// let netlist = rechisel_firrtl::lower_circuit(&m.into_circuit())?;
///
/// // Compile once, simulate many times.
/// let tape = Arc::new(Tape::compile(&netlist)?);
/// let mut sim = CompiledSimulator::from_tape(tape);
/// sim.reset(2)?;
/// sim.poke("en", 1)?;
/// sim.step_n(5);
/// assert_eq!(sim.peek("out")?, 5);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct CompiledSimulator {
    tape: Arc<Tape>,
    state: Vec<EvalValue>,
    /// Shared backing store of all memories (layout fixed by the tape's `mems`).
    mem: Vec<u128>,
    /// Implicit sync-read registers whose own clock domain has not ticked yet; peeks
    /// of signals depending on them fail with [`SimError::SyncReadBeforeClock`].
    uncaptured: std::collections::BTreeSet<String>,
    cycles: u64,
}

impl CompiledSimulator {
    /// Compiles `netlist` and creates a simulator with all inputs and registers zero.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Eval`] when the netlist cannot be compiled (see
    /// [`Tape::compile`]).
    pub fn new(netlist: &Netlist) -> Result<Self, SimError> {
        Ok(Self::from_tape(Arc::new(Tape::compile(netlist)?)))
    }

    /// Creates a simulator over an already-compiled (possibly shared) tape. Memories
    /// start at their declared initial image (zero where uninitialized).
    pub fn from_tape(tape: Arc<Tape>) -> Self {
        let state = tape.init.clone();
        let mem = tape.mem_init.clone();
        let uncaptured = tape.sync_regs.iter().map(|(name, _)| name.clone()).collect();
        Self { tape, state, mem, uncaptured, cycles: 0 }
    }

    /// The compiled program this simulator executes.
    pub fn tape(&self) -> &Arc<Tape> {
        &self.tape
    }

    /// Number of clock cycles simulated so far.
    pub fn cycles(&self) -> u64 {
        self.cycles
    }

    /// Drives an input port.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::NoSuchPort`] if `name` is not an input port and
    /// [`SimError::ValueTooWide`] if `value` does not fit in the port's width.
    pub fn poke(&mut self, name: &str, value: u128) -> Result<(), SimError> {
        let port =
            self.tape.inputs.get(name).ok_or_else(|| SimError::NoSuchPort(name.to_string()))?;
        if value != mask(value, port.width) {
            return Err(SimError::ValueTooWide {
                port: port.name.clone(),
                width: port.width,
                value,
            });
        }
        self.state[port.slot as usize] = EvalValue::new(value, port.width, port.signed);
        Ok(())
    }

    /// Reads the current value of any signal (port, wire or register).
    ///
    /// # Errors
    ///
    /// Returns [`SimError::NoSuchPort`] if the signal does not exist, and
    /// [`SimError::SyncReadBeforeClock`] when the signal depends on a sequential
    /// memory read whose own clock domain has not ticked yet (mirroring the
    /// interpreter).
    pub fn peek(&self, name: &str) -> Result<u128, SimError> {
        if !self.uncaptured.is_empty() {
            if let Some(sources) = self.tape.sync_sources.get(name) {
                if sources.iter().any(|s| self.uncaptured.contains(s)) {
                    return Err(SimError::SyncReadBeforeClock { signal: name.to_string() });
                }
            }
        }
        self.tape
            .index
            .get(name)
            .map(|slot| self.state[*slot as usize].bits)
            .ok_or_else(|| SimError::NoSuchPort(name.to_string()))
    }

    /// Re-evaluates all combinational logic (runs the combinational program).
    pub fn eval(&mut self) {
        exec(&self.tape.comb, &mut self.state, &self.mem);
    }

    /// Advances one clock cycle on **every** domain: combinational program, register
    /// staging, simultaneous commit (memory writes first, while every operand slot
    /// still holds its pre-edge value, then registers), combinational program again.
    pub fn step(&mut self) {
        self.step_filtered(None);
    }

    /// Edges one clock domain: the full program runs, but only commits tagged with
    /// `domain` are applied (see [`crate::SimEngine::step_clock`]).
    ///
    /// # Errors
    ///
    /// Returns [`SimError::NoSuchClock`] when `domain` is not a clock domain of the
    /// compiled design.
    pub fn step_clock(&mut self, domain: &str) -> Result<(), SimError> {
        let idx = self.domain_index(domain)?;
        self.step_filtered(Some(&[idx]));
        Ok(())
    }

    /// Edges several clock domains **simultaneously**: one edge event, one cycle,
    /// with every listed domain's commits applied against the same staged pre-edge
    /// state (see [`crate::SimEngine::step_clocks`]).
    ///
    /// # Errors
    ///
    /// Returns [`SimError::NoSuchClock`] when `domains` is empty or names a domain
    /// that is not a clock domain of the compiled design.
    pub fn step_clocks(&mut self, domains: &[&str]) -> Result<(), SimError> {
        if domains.is_empty() {
            return Err(SimError::NoSuchClock("(empty domain set)".to_string()));
        }
        let mut indices = Vec::with_capacity(domains.len());
        for domain in domains {
            indices.push(self.domain_index(domain)?);
        }
        self.step_filtered(Some(&indices));
        Ok(())
    }

    fn domain_index(&self, domain: &str) -> Result<u32, SimError> {
        self.tape
            .domains
            .iter()
            .position(|d| d == domain)
            .map(|i| i as u32)
            .ok_or_else(|| SimError::NoSuchClock(domain.to_string()))
    }

    /// Overwrites this simulator's dynamic state from raw slot bits (metadata keeps
    /// the tape's static shapes — only valid for statically-shaped tapes, which is
    /// exactly the set the native codegen accepts). Bridge for the native engine's
    /// [`step_clocks`](crate::NativeSimulator::step_clocks).
    pub(crate) fn load_raw(
        &mut self,
        bits: &[u128],
        mem: &[u128],
        uncaptured: &std::collections::BTreeSet<String>,
    ) {
        for (slot, b) in self.state.iter_mut().zip(bits) {
            slot.bits = *b;
        }
        self.mem.copy_from_slice(mem);
        self.uncaptured = uncaptured.clone();
    }

    /// Copies this simulator's dynamic state back out as raw slot bits (inverse of
    /// [`load_raw`](Self::load_raw)).
    pub(crate) fn store_raw(
        &self,
        bits: &mut [u128],
        mem: &mut [u128],
        uncaptured: &mut std::collections::BTreeSet<String>,
    ) {
        for (slot, b) in self.state.iter().zip(bits.iter_mut()) {
            *b = slot.bits;
        }
        mem.copy_from_slice(&self.mem);
        *uncaptured = self.uncaptured.clone();
    }

    /// The design's clock domains, in first-appearance order.
    pub fn clock_domains(&self) -> &[String] {
        &self.tape.domains
    }

    fn step_filtered(&mut self, domains: Option<&[u32]>) {
        self.eval();
        exec(&self.tape.reg_program, &mut self.state, &self.mem);
        for commit in &self.tape.mem_commits {
            if domains.is_some_and(|ds| !ds.contains(&commit.domain)) {
                continue;
            }
            if self.state[commit.en as usize].bits & 1 == 0 {
                continue;
            }
            let addr = self.state[commit.addr as usize].bits;
            if addr < u128::from(commit.depth) {
                let value = self.state[commit.val as usize].bits & commit.mask;
                // Whole-word stores in port order: a lane-masked port merges its
                // data into the PRE-edge word (staged by the register program), and
                // the last port to store a word wins — exactly the interpreter's
                // commit loop and the emitted Verilog's nonblocking assignments.
                let word = match commit.lane {
                    None => value,
                    Some((lane, old)) => {
                        let lanes = self.state[lane as usize].bits & commit.mask;
                        (self.state[old as usize].bits & !lanes) | (value & lanes)
                    }
                };
                self.mem[(commit.base + addr as u32) as usize] = word;
            }
        }
        for commit in &self.tape.commits {
            if domains.is_some_and(|ds| !ds.contains(&commit.domain)) {
                continue;
            }
            self.state[commit.reg as usize].bits =
                self.state[commit.staged as usize].bits & commit.mask;
        }
        if !self.uncaptured.is_empty() {
            let sync_regs = &self.tape.sync_regs;
            self.uncaptured.retain(|name| {
                !sync_regs.iter().any(|(reg, reg_domain)| {
                    reg == name && domains.is_none_or(|ds| ds.contains(reg_domain))
                })
            });
        }
        self.cycles += 1;
        self.eval();
    }

    /// Advances `n` clock cycles.
    pub fn step_n(&mut self, n: u32) {
        for _ in 0..n {
            self.step();
        }
    }

    /// Asserts the `reset` input (when present) for `cycles` cycles, then deasserts it.
    ///
    /// Each cycle is a full [`step`](Self::step), so the pulse edges **every** clock
    /// domain. Memory init images are not restored — initialization applies at time
    /// zero only.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::NoSuchPort`] only if the tape's reset bookkeeping is
    /// inconsistent (cannot happen for tapes produced by [`Tape::compile`]).
    pub fn reset(&mut self, cycles: u32) -> Result<(), SimError> {
        if self.tape.has_reset {
            self.poke("reset", 1)?;
            self.step_n(cycles);
            self.poke("reset", 0)?;
            self.eval();
        }
        Ok(())
    }

    /// Reads all output ports, in port order (raw values — no
    /// [`SimError::SyncReadBeforeClock`] guard; see `SimEngine::outputs`).
    pub fn outputs(&self) -> Vec<(String, u128)> {
        self.tape
            .outputs
            .iter()
            .map(|(name, slot)| (name.clone(), self.state[*slot as usize].bits))
            .collect()
    }

    fn tape_mem(&self, mem: &str) -> Result<&TapeMem, SimError> {
        self.tape
            .mems
            .iter()
            .find(|m| m.name == mem)
            .ok_or_else(|| SimError::NoSuchMem(mem.to_string()))
    }

    /// Reads the current contents of one memory word.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::NoSuchMem`] for unknown memories and
    /// [`SimError::MemAddrOutOfRange`] for addresses outside `0..depth`.
    pub fn peek_mem(&self, mem: &str, addr: u128) -> Result<u128, SimError> {
        let m = self.tape_mem(mem)?;
        if addr >= u128::from(m.depth) {
            return Err(SimError::MemAddrOutOfRange {
                mem: mem.to_string(),
                depth: m.depth as usize,
                addr,
            });
        }
        Ok(self.mem[(m.base + addr as u32) as usize])
    }

    /// Overwrites one memory word, validating the address and value first.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::NoSuchMem`] for unknown memories,
    /// [`SimError::MemAddrOutOfRange`] for addresses outside `0..depth`, and
    /// [`SimError::MemValueTooWide`] when `value` has bits above the word width
    /// (out-of-range data is rejected rather than silently masked, mirroring
    /// [`CompiledSimulator::poke`]).
    pub fn poke_mem(&mut self, mem: &str, addr: u128, value: u128) -> Result<(), SimError> {
        let m = self.tape_mem(mem)?;
        if addr >= u128::from(m.depth) {
            return Err(SimError::MemAddrOutOfRange {
                mem: mem.to_string(),
                depth: m.depth as usize,
                addr,
            });
        }
        if value != mask(value, m.width) {
            return Err(SimError::MemValueTooWide { mem: mem.to_string(), width: m.width, value });
        }
        let word = (m.base + addr as u32) as usize;
        self.mem[word] = value;
        Ok(())
    }
}

impl crate::engine::SimEngine for CompiledSimulator {
    fn poke(&mut self, name: &str, value: u128) -> Result<(), SimError> {
        CompiledSimulator::poke(self, name, value)
    }

    fn peek(&self, name: &str) -> Result<u128, SimError> {
        CompiledSimulator::peek(self, name)
    }

    fn eval(&mut self) -> Result<(), SimError> {
        CompiledSimulator::eval(self);
        Ok(())
    }

    fn step(&mut self) -> Result<(), SimError> {
        CompiledSimulator::step(self);
        Ok(())
    }

    fn step_clock(&mut self, domain: &str) -> Result<(), SimError> {
        CompiledSimulator::step_clock(self, domain)
    }

    fn step_clocks(&mut self, domains: &[&str]) -> Result<(), SimError> {
        CompiledSimulator::step_clocks(self, domains)
    }

    fn clock_domains(&self) -> Vec<String> {
        self.tape.domains.clone()
    }

    fn cycles(&self) -> u64 {
        CompiledSimulator::cycles(self)
    }

    fn outputs(&self) -> Vec<(String, u128)> {
        CompiledSimulator::outputs(self)
    }

    fn has_reset(&self) -> bool {
        self.tape.has_reset
    }

    fn peek_mem(&self, mem: &str, addr: u128) -> Result<u128, SimError> {
        CompiledSimulator::peek_mem(self, mem, addr)
    }

    fn poke_mem(&mut self, mem: &str, addr: u128, value: u128) -> Result<(), SimError> {
        CompiledSimulator::poke_mem(self, mem, addr, value)
    }

    fn mem_names(&self) -> Vec<String> {
        self.tape.mems.iter().map(|m| m.name.clone()).collect()
    }

    fn mem_depth(&self, mem: &str) -> Option<usize> {
        self.tape.mems.iter().find(|m| m.name == mem).map(|m| m.depth as usize)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::simulator::Simulator;
    use rechisel_firrtl::lower_circuit;
    use rechisel_hcl::prelude::*;

    fn counter_netlist() -> Netlist {
        let mut m = ModuleBuilder::new("Counter");
        let en = m.input("en", Type::bool());
        let out = m.output("out", Type::uint(8));
        let count = m.reg_init("count", Type::uint(8), &Signal::lit_w(0, 8));
        m.when(&en, |m| {
            let next = count.add(&Signal::lit_w(1, 8)).bits(7, 0);
            m.connect(&count, &next);
        });
        m.connect(&out, &count);
        lower_circuit(&m.into_circuit()).unwrap()
    }

    #[test]
    fn compiled_counter_matches_interpreter() {
        let netlist = counter_netlist();
        let mut interp = Simulator::new(netlist.clone());
        let mut compiled = CompiledSimulator::new(&netlist).unwrap();
        interp.reset(2).unwrap();
        compiled.reset(2).unwrap();
        for en in [1u128, 1, 0, 1, 0, 0, 1, 1] {
            interp.poke("en", en).unwrap();
            compiled.poke("en", en).unwrap();
            interp.step().unwrap();
            compiled.step();
            assert_eq!(interp.peek("out").unwrap(), compiled.peek("out").unwrap());
            assert_eq!(interp.peek("count").unwrap(), compiled.peek("count").unwrap());
        }
        assert_eq!(interp.cycles(), compiled.cycles());
        assert_eq!(interp.outputs(), compiled.outputs());
    }

    #[test]
    fn tape_is_shared_between_instances() {
        let tape = Arc::new(Tape::compile(&counter_netlist()).unwrap());
        assert_eq!(tape.name(), "Counter");
        assert!(tape.instructions_per_cycle() > 0);
        assert!(tape.slot_count() > 0);
        let mut a = CompiledSimulator::from_tape(tape.clone());
        let mut b = CompiledSimulator::from_tape(tape.clone());
        a.reset(1).unwrap();
        b.reset(1).unwrap();
        a.poke("en", 1).unwrap();
        a.step_n(3);
        b.step_n(3);
        // Independent state over the same program.
        assert_eq!(a.peek("out").unwrap(), 3);
        assert_eq!(b.peek("out").unwrap(), 0);
        assert!(Arc::ptr_eq(a.tape(), &tape) && Arc::ptr_eq(b.tape(), &tape));
    }

    #[test]
    fn register_chains_commit_simultaneously() {
        // A 2-stage shift register built from reset-less registers with bare
        // register-to-register connects: the second register's next-state is a plain
        // `Ref` to the first. The commit pass must snapshot staged values so register
        // `b` captures `a`'s PRE-step value (regression test: an aliased staged slot
        // once collapsed the chain to a single stage).
        let mut m = ModuleBuilder::new("Shift2");
        let d = m.input("d", Type::uint(4));
        let q = m.output("q", Type::uint(4));
        let a = m.reg("a", Type::uint(4));
        let b = m.reg("b", Type::uint(4));
        m.connect(&a, &d);
        m.connect(&b, &a);
        m.connect(&q, &b);
        let netlist = lower_circuit(&m.into_circuit()).unwrap();

        let mut interp = Simulator::new(netlist.clone());
        let mut compiled = CompiledSimulator::new(&netlist).unwrap();
        for (cycle, d_val) in [5u128, 9, 2, 7, 0, 3].into_iter().enumerate() {
            interp.poke("d", d_val).unwrap();
            compiled.poke("d", d_val).unwrap();
            interp.step().unwrap();
            compiled.step();
            for name in ["a", "b", "q"] {
                assert_eq!(
                    interp.peek(name).unwrap(),
                    compiled.peek(name).unwrap(),
                    "cycle {cycle}, signal {name}"
                );
            }
        }
        // And the chain really is two stages deep: q lags d by two cycles.
        assert_eq!(compiled.peek("q").unwrap(), 0);
        assert_eq!(compiled.peek("a").unwrap(), 3);
    }

    #[test]
    fn poke_and_peek_errors_match_the_interpreter() {
        let mut sim = CompiledSimulator::new(&counter_netlist()).unwrap();
        assert!(matches!(sim.poke("ghost", 1), Err(SimError::NoSuchPort(_))));
        assert!(matches!(sim.poke("out", 1), Err(SimError::NoSuchPort(_))));
        assert!(matches!(sim.peek("ghost"), Err(SimError::NoSuchPort(_))));
        // Out-of-range literals are rejected, not silently masked.
        let err = sim.poke("en", 2).unwrap_err();
        assert!(
            matches!(&err, SimError::ValueTooWide { port, width: 1, value: 2 } if port == "en")
        );
    }

    fn ram_netlist() -> Netlist {
        let mut m = ModuleBuilder::new("Ram");
        let we = m.input("we", Type::bool());
        let waddr = m.input("waddr", Type::uint(3));
        let wdata = m.input("wdata", Type::uint(8));
        let raddr = m.input("raddr", Type::uint(3));
        let rdata = m.output("rdata", Type::uint(8));
        let mem = m.mem("store", Type::uint(8), 8);
        m.when(&we, |m| {
            m.mem_write(&mem, &waddr, &wdata);
        });
        m.connect(&rdata, &mem.read(&raddr));
        lower_circuit(&m.into_circuit()).unwrap()
    }

    #[test]
    fn compiled_memory_matches_interpreter() {
        let netlist = ram_netlist();
        let mut interp = Simulator::new(netlist.clone());
        let mut compiled = CompiledSimulator::new(&netlist).unwrap();
        assert_eq!(compiled.tape().mem_word_count(), 8);
        // Mixed write/read schedule, including a read-under-write collision at cycle 3.
        let schedule: &[(u128, u128, u128, u128)] = &[
            (1, 0, 0x11, 0),
            (1, 1, 0x22, 0),
            (0, 0, 0xFF, 1),
            (1, 1, 0x33, 1), // read addr 1 while writing addr 1 (old data expected)
            (0, 0, 0, 1),
        ];
        for (cycle, &(we, waddr, wdata, raddr)) in schedule.iter().enumerate() {
            for (name, v) in [("we", we), ("waddr", waddr), ("wdata", wdata), ("raddr", raddr)] {
                interp.poke(name, v).unwrap();
                compiled.poke(name, v).unwrap();
            }
            interp.eval().unwrap();
            compiled.eval();
            assert_eq!(
                interp.peek("rdata").unwrap(),
                compiled.peek("rdata").unwrap(),
                "pre-edge rdata, cycle {cycle}"
            );
            interp.step().unwrap();
            compiled.step();
            assert_eq!(
                interp.peek("rdata").unwrap(),
                compiled.peek("rdata").unwrap(),
                "post-edge rdata, cycle {cycle}"
            );
        }
        for addr in 0..8 {
            assert_eq!(
                interp.peek_mem("store", addr).unwrap(),
                compiled.peek_mem("store", addr).unwrap(),
                "word {addr}"
            );
        }
        assert_eq!(compiled.peek_mem("store", 1).unwrap(), 0x33);
    }

    #[test]
    fn compiled_mem_poke_peek_validation() {
        let mut sim = CompiledSimulator::new(&ram_netlist()).unwrap();
        assert!(matches!(sim.poke_mem("ghost", 0, 0), Err(SimError::NoSuchMem(_))));
        assert!(matches!(
            sim.poke_mem("store", 8, 0),
            Err(SimError::MemAddrOutOfRange { depth: 8, addr: 8, .. })
        ));
        assert!(matches!(
            sim.poke_mem("store", 0, 0x100),
            Err(SimError::MemValueTooWide { width: 8, value: 0x100, .. })
        ));
        assert!(matches!(sim.peek_mem("store", 8), Err(SimError::MemAddrOutOfRange { .. })));
        // A valid poke is visible through a combinational read.
        sim.poke_mem("store", 6, 0x5A).unwrap();
        sim.poke("raddr", 6).unwrap();
        sim.eval();
        assert_eq!(sim.peek("rdata").unwrap(), 0x5A);
    }

    #[test]
    fn multiple_write_ports_last_wins() {
        // Two unconditional writes to the same address in one cycle: the textually
        // last port must win on both engines.
        let mut m = ModuleBuilder::new("DualWrite");
        let addr = m.input("addr", Type::uint(2));
        let a = m.input("a", Type::uint(4));
        let b = m.input("b", Type::uint(4));
        let out = m.output("out", Type::uint(4));
        let mem = m.mem("store", Type::uint(4), 4);
        m.mem_write(&mem, &addr, &a);
        m.mem_write(&mem, &addr, &b);
        m.connect(&out, &mem.read(&addr));
        let netlist = lower_circuit(&m.into_circuit()).unwrap();
        let mut interp = Simulator::new(netlist.clone());
        let mut compiled = CompiledSimulator::new(&netlist).unwrap();
        for sim in [&mut interp as &mut dyn crate::engine::SimEngine, &mut compiled] {
            sim.poke("addr", 2).unwrap();
            sim.poke("a", 0x3).unwrap();
            sim.poke("b", 0x9).unwrap();
            sim.step().unwrap();
            assert_eq!(sim.peek_mem("store", 2).unwrap(), 0x9);
            assert_eq!(sim.peek("out").unwrap(), 0x9);
        }
    }

    #[test]
    fn masked_sync_init_ram_matches_interpreter() {
        // One memory exercising all three new semantics at once: a lane-masked write
        // port, a sequential read port, and an initial image — driven identically on
        // both engines, compared peek-for-peek and word-for-word.
        let mut m = ModuleBuilder::new("FullRam");
        let we = m.input("we", Type::bool());
        let addr = m.input("addr", Type::uint(2));
        let wdata = m.input("wdata", Type::uint(8));
        let wmask = m.input("wmask", Type::uint(8));
        let rdata_c = m.output("rdata_c", Type::uint(8));
        let rdata_s = m.output("rdata_s", Type::uint(8));
        let mem = m.mem("store", Type::uint(8), 4);
        m.mem_init(&mem, &[0x0F, 0xF0, 0x3C]);
        m.when(&we, |m| m.mem_write_masked(&mem, &addr, &wdata, &wmask));
        m.connect(&rdata_c, &mem.read(&addr));
        m.connect(&rdata_s, &mem.read_sync(&addr));
        let netlist = lower_circuit(&m.into_circuit()).unwrap();

        let mut interp = Simulator::new(netlist.clone());
        let mut compiled = CompiledSimulator::new(&netlist).unwrap();
        // Before the first edge both engines refuse to peek the registered read.
        assert_eq!(interp.peek("rdata_s").unwrap_err(), compiled.peek("rdata_s").unwrap_err());
        // The initial image is visible through the combinational port immediately.
        for sim_addr in 0..4u128 {
            interp.poke("addr", sim_addr).unwrap();
            compiled.poke("addr", sim_addr).unwrap();
            interp.eval().unwrap();
            compiled.eval();
            assert_eq!(interp.peek("rdata_c").unwrap(), compiled.peek("rdata_c").unwrap());
        }
        let schedule: &[(u128, u128, u128, u128)] = &[
            (1, 0, 0xFF, 0x0F), // masked write into the init image
            (1, 0, 0xAA, 0xF0), // second masked write, other lanes
            (0, 0, 0x00, 0x00),
            (1, 2, 0x55, 0xFF), // full-lane overwrite
            (1, 3, 0x77, 0x00), // enabled write with no lanes set
        ];
        for (cycle, &(we_v, addr_v, data_v, mask_v)) in schedule.iter().enumerate() {
            for (name, v) in [("we", we_v), ("addr", addr_v), ("wdata", data_v), ("wmask", mask_v)]
            {
                interp.poke(name, v).unwrap();
                compiled.poke(name, v).unwrap();
            }
            interp.step().unwrap();
            compiled.step();
            for name in ["rdata_c", "rdata_s"] {
                assert_eq!(
                    interp.peek(name).unwrap(),
                    compiled.peek(name).unwrap(),
                    "cycle {cycle}, signal {name}"
                );
            }
            for word in 0..4 {
                assert_eq!(
                    interp.peek_mem("store", word).unwrap(),
                    compiled.peek_mem("store", word).unwrap(),
                    "cycle {cycle}, word {word}"
                );
            }
        }
        // Spot-check the merged contents: 0x0F | low-lane 0xFF then high-lane 0xAA.
        assert_eq!(compiled.peek_mem("store", 0).unwrap(), 0xAF);
        assert_eq!(compiled.peek_mem("store", 2).unwrap(), 0x55);
        assert_eq!(compiled.peek_mem("store", 3).unwrap(), 0x00);
    }

    #[test]
    fn same_cycle_ports_commit_like_nonblocking_assigns() {
        // Two ports, same address, same cycle: an unmasked first port and a masked
        // second port. Every port computes its word from the PRE-edge contents and
        // whole-word stores apply in declaration order (last port wins) — exactly
        // the emitted Verilog, where each port is a nonblocking assignment reading
        // pre-edge state and the last scheduled assignment takes the word.
        let mut m = ModuleBuilder::new("MergePorts");
        let addr = m.input("addr", Type::uint(2));
        let a = m.input("a", Type::uint(8));
        let b = m.input("b", Type::uint(8));
        let ben = m.input("ben", Type::uint(8));
        let out = m.output("out", Type::uint(8));
        let mem = m.mem("store", Type::uint(8), 4);
        m.mem_write(&mem, &addr, &a);
        m.mem_write_masked(&mem, &addr, &b, &ben);
        m.connect(&out, &mem.read(&addr));
        let netlist = lower_circuit(&m.into_circuit()).unwrap();
        let mut interp = Simulator::new(netlist.clone());
        let mut compiled = CompiledSimulator::new(&netlist).unwrap();
        for sim in [&mut interp as &mut dyn crate::engine::SimEngine, &mut compiled] {
            sim.poke_mem("store", 1, 0xFF).unwrap();
            sim.poke("addr", 1).unwrap();
            sim.poke("a", 0x00).unwrap();
            sim.poke("b", 0x3C).unwrap();
            sim.poke("ben", 0x0F).unwrap();
            sim.step().unwrap();
            // The masked port's merge reads the PRE-edge 0xFF (not port 1's 0x00):
            // (0xFF & ~0x0F) | (0x3C & 0x0F) = 0xFC, and as the last port it wins.
            assert_eq!(sim.peek_mem("store", 1).unwrap(), 0xFC);
            assert_eq!(sim.peek("out").unwrap(), 0xFC);
        }
    }

    #[test]
    fn constants_are_pooled() {
        // Two defs using the same literal share one constant slot.
        let mut m = ModuleBuilder::new("Consts");
        let a = m.input("a", Type::uint(4));
        let x = m.output("x", Type::uint(5));
        let y = m.output("y", Type::uint(5));
        m.connect(&x, &a.add(&Signal::lit_w(3, 4)));
        m.connect(&y, &a.sub(&Signal::lit_w(3, 4)));
        let netlist = lower_circuit(&m.into_circuit()).unwrap();
        let with_sharing = Tape::compile(&netlist).unwrap().slot_count();
        // Named slots + 1 shared constant + 2 temps + (implicit reset constants if any).
        let named = netlist.slot_assignment().len();
        assert_eq!(with_sharing, named + 1 + 2);
    }

    /// `out` is `a & b` or `a | b` — lowering both variants yields netlists with
    /// identical def order whose exprs differ only in the rewired defs, the shape
    /// [`Tape::patch`] is specified for.
    fn logic_netlist(use_or: bool) -> Netlist {
        let mut m = ModuleBuilder::new("Logic");
        let a = m.input("a", Type::uint(8));
        let b = m.input("b", Type::uint(8));
        let out = m.output("out", Type::uint(8));
        let expr = if use_or { a.or(&b) } else { a.and(&b) };
        m.connect(&out, &expr);
        lower_circuit(&m.into_circuit()).unwrap()
    }

    /// Defs whose expressions differ between two same-shaped netlists.
    fn changed_defs(old: &Netlist, new: &Netlist) -> Vec<String> {
        assert_eq!(old.defs.len(), new.defs.len());
        old.defs
            .iter()
            .zip(&new.defs)
            .filter(|(o, n)| {
                assert_eq!(o.name, n.name);
                o.expr.to_string() != n.expr.to_string()
            })
            .map(|(o, _)| o.name.clone())
            .collect()
    }

    #[test]
    fn patched_tape_matches_a_from_scratch_compile() {
        let old_nl = logic_netlist(false);
        let new_nl = logic_netlist(true);
        let changed = changed_defs(&old_nl, &new_nl);
        assert!(!changed.is_empty());

        let old_tape = Tape::compile(&old_nl).unwrap();
        let patched = old_tape.patch(&new_nl, &changed).unwrap();
        let scratch = Tape::compile(&new_nl).unwrap();
        // The digest is the behavioural identity: the patched tape reports the
        // patched netlist's digest, bit-for-bit equal to a from-scratch compile,
        // and distinct from the tape it was patched from.
        assert_eq!(patched.source_digest(), scratch.source_digest());
        assert_eq!(patched.source_digest(), new_nl.structural_digest());
        assert_ne!(patched.source_digest(), old_tape.source_digest());

        let mut p = CompiledSimulator::from_tape(Arc::new(patched));
        let mut s = CompiledSimulator::from_tape(Arc::new(scratch));
        for (a, b) in [(0xF0u128, 0x0Fu128), (0xAA, 0x55), (1, 1), (255, 3), (0, 0)] {
            for sim in [&mut p, &mut s] {
                sim.poke("a", a).unwrap();
                sim.poke("b", b).unwrap();
                sim.step();
            }
            assert_eq!(p.peek("out").unwrap(), a | b);
            assert_eq!(p.peek("out").unwrap(), s.peek("out").unwrap());
        }
    }

    /// `tap` reads either the sync-read wire (tainted until the first edge) or the
    /// plain input; the sync-read port itself is always present via `rdata`.
    fn sync_tap_netlist(tap_reads_sync: bool) -> Netlist {
        let mut m = ModuleBuilder::new("SyncTap");
        let we = m.input("we", Type::bool());
        let addr = m.input("addr", Type::uint(2));
        let wdata = m.input("wdata", Type::uint(8));
        let rdata = m.output("rdata", Type::uint(8));
        let tap = m.output("tap", Type::uint(8));
        let mem = m.mem("store", Type::uint(8), 4);
        m.when(&we, |m| m.mem_write(&mem, &addr, &wdata));
        let w = m.wire("w", Type::uint(8));
        m.connect(&w, &mem.read_sync(&addr));
        m.connect(&rdata, &w);
        m.connect(&tap, if tap_reads_sync { &w } else { &wdata });
        lower_circuit(&m.into_circuit()).unwrap()
    }

    #[test]
    fn patching_recomputes_sync_read_taint_instead_of_copying_it() {
        // Away from the sync source: the patched tape must NOT keep reporting
        // SyncReadBeforeClock for a signal the circuit no longer routes through
        // the registered read port.
        let old_nl = sync_tap_netlist(true);
        let new_nl = sync_tap_netlist(false);
        let changed = changed_defs(&old_nl, &new_nl);
        let old_tape = Tape::compile(&old_nl).unwrap();
        let patched = old_tape.patch(&new_nl, &changed).unwrap();
        assert_eq!(patched.source_digest(), Tape::compile(&new_nl).unwrap().source_digest());

        let old_sim = CompiledSimulator::from_tape(Arc::new(old_tape));
        let mut new_sim = CompiledSimulator::from_tape(Arc::new(patched));
        assert!(matches!(old_sim.peek("tap"), Err(SimError::SyncReadBeforeClock { .. })));
        new_sim.poke("wdata", 0x42).unwrap();
        new_sim.eval();
        assert_eq!(new_sim.peek("tap").unwrap(), 0x42);
        // rdata still rides the registered port in both, so it stays guarded.
        assert!(matches!(new_sim.peek("rdata"), Err(SimError::SyncReadBeforeClock { .. })));

        // Toward the sync source: taint the patched tape MUST acquire.
        let tainted = Tape::compile(&new_nl)
            .unwrap()
            .patch(&old_nl, &changed_defs(&new_nl, &old_nl))
            .unwrap();
        let mut tainted_sim = CompiledSimulator::from_tape(Arc::new(tainted));
        assert!(matches!(tainted_sim.peek("tap"), Err(SimError::SyncReadBeforeClock { .. })));
        tainted_sim.step();
        assert!(tainted_sim.peek("tap").is_ok());
    }

    #[test]
    fn patched_simulators_track_scratch_ones_through_sequential_state() {
        // The reused sequential program (register staging, commits, write ports)
        // must interoperate with the respliced combinational program.
        let old_nl = sync_tap_netlist(false);
        let new_nl = sync_tap_netlist(true);
        let patched = Tape::compile(&old_nl)
            .unwrap()
            .patch(&new_nl, &changed_defs(&old_nl, &new_nl))
            .unwrap();
        let mut p = CompiledSimulator::from_tape(Arc::new(patched));
        let mut s = CompiledSimulator::new(&new_nl).unwrap();
        let stim = [(1u128, 0u128, 0x11u128), (1, 1, 0x22), (0, 0, 0), (1, 2, 0x33), (0, 1, 0)];
        for (we, addr, wdata) in stim {
            for sim in [&mut p, &mut s] {
                sim.poke("we", we).unwrap();
                sim.poke("addr", addr).unwrap();
                sim.poke("wdata", wdata).unwrap();
                sim.step();
            }
            assert_eq!(p.peek("rdata").unwrap(), s.peek("rdata").unwrap());
            assert_eq!(p.peek("tap").unwrap(), s.peek("tap").unwrap());
        }
        for a in 0..4 {
            assert_eq!(p.peek_mem("store", a).unwrap(), s.peek_mem("store", a).unwrap());
        }
    }

    #[test]
    fn patch_rejects_netlists_that_do_not_match_the_tape() {
        let tape = Tape::compile(&logic_netlist(false)).unwrap();
        // Different module entirely.
        let other = counter_netlist();
        assert!(matches!(
            tape.patch(&other, &[]),
            Err(SimError::TapeMismatch(why)) if why.contains("module name")
        ));
        // Same name, different def count.
        let mut shrunk = logic_netlist(false);
        shrunk.defs.pop();
        assert!(matches!(
            tape.patch(&shrunk, &[]),
            Err(SimError::TapeMismatch(why)) if why.contains("spans")
        ));
        // A changed-def name that is not a def.
        let nl = logic_netlist(false);
        assert!(matches!(
            tape.patch(&nl, &["nonexistent".to_string()]),
            Err(SimError::TapeMismatch(why)) if why.contains("nonexistent")
        ));
        // An unlisted def whose span no longer lines up (defs reordered).
        let sync_tape = Tape::compile(&sync_tap_netlist(false)).unwrap();
        let mut swapped = sync_tap_netlist(false);
        assert!(swapped.defs.len() >= 2);
        swapped.defs.swap(0, 1);
        assert!(matches!(
            sync_tape.patch(&swapped, &[]),
            Err(SimError::TapeMismatch(why)) if why.contains("line up")
        ));
    }

    #[test]
    fn broken_netlists_fail_at_compile_time() {
        let mut netlist = counter_netlist();
        // Corrupt a def to reference a non-existent signal.
        netlist.defs[0].expr = Expression::reference("ghost");
        match Tape::compile(&netlist) {
            Err(SimError::Eval(EvalError::UnknownSignal(name))) => assert_eq!(name, "ghost"),
            other => panic!("expected UnknownSignal, got {other:?}"),
        }
        // Non-ground forms are rejected as unsupported.
        let mut netlist = counter_netlist();
        netlist.defs[0].expr =
            Expression::SubField(Box::new(Expression::reference("count")), "f".into());
        assert!(matches!(
            Tape::compile(&netlist),
            Err(SimError::Eval(EvalError::UnsupportedExpression(_)))
        ));
    }
}
