//! Testbench framework: functional points, stimulus generation, and DUT-vs-reference
//! comparison.
//!
//! ReChisel's simulation feedback (paper §IV-B, "Functional Error") consists of the
//! failed functional points with their input stimuli, the expected outputs (from the
//! reference model) and the actual outputs (from the DUT). [`run_testbench`] produces
//! exactly that: a [`SimReport`] whose [`PointFailure`]s are handed to the Reviewer
//! agent as the error list.

use std::collections::BTreeMap;

use rechisel_firrtl::lower::Netlist;

use crate::batched::BatchedSimulator;
use crate::engine::{EngineKind, SimEngine};
use crate::simulator::{SimError, Simulator};

/// One functional point: a set of input assignments, how many clock cycles to advance
/// after applying them, and whether to compare outputs afterwards.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FunctionalPoint {
    /// Input port assignments applied before the point is evaluated.
    pub inputs: Vec<(String, u128)>,
    /// Clock cycles to advance after applying the inputs (0 for purely combinational
    /// checks).
    pub cycles: u32,
    /// Whether outputs are compared at this point. Points with `check = false` are used
    /// to set up internal state.
    pub check: bool,
}

impl FunctionalPoint {
    /// A combinational check: apply inputs, settle, compare.
    pub fn comb(inputs: Vec<(String, u128)>) -> Self {
        Self { inputs, cycles: 0, check: true }
    }

    /// A sequential check: apply inputs, advance `cycles`, compare.
    pub fn seq(inputs: Vec<(String, u128)>, cycles: u32) -> Self {
        Self { inputs, cycles, check: true }
    }

    /// A setup step that drives inputs and advances the clock without checking.
    pub fn setup(inputs: Vec<(String, u128)>, cycles: u32) -> Self {
        Self { inputs, cycles, check: false }
    }
}

/// A testbench: a reset preamble followed by a sequence of functional points.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Testbench {
    /// Cycles to hold reset at the start (0 to skip reset).
    pub reset_cycles: u32,
    /// The functional points, applied in order.
    pub points: Vec<FunctionalPoint>,
}

impl Testbench {
    /// Creates a testbench with the default two-cycle reset preamble.
    pub fn new(points: Vec<FunctionalPoint>) -> Self {
        Self { reset_cycles: 2, points }
    }

    /// Number of points that perform a check.
    pub fn checked_points(&self) -> usize {
        self.points.iter().filter(|p| p.check).count()
    }

    /// True when no point advances the clock — every check is a settled evaluation.
    ///
    /// Combinational testbenches are the point-parallel regime of
    /// [`run_testbench_batched`]: checked points are independent given the post-reset
    /// state, so they can ride separate lanes of one batched tape walk.
    pub fn is_combinational(&self) -> bool {
        self.points.iter().all(|p| p.cycles == 0)
    }

    /// Generates a randomized testbench for a netlist interface.
    ///
    /// `cycles_per_point` of 0 produces a purely combinational testbench. The generator
    /// uses a simple deterministic xorshift so the same seed always produces the same
    /// stimuli (no global RNG, per the reproducibility requirements of the benchmark
    /// suite).
    pub fn random_for(netlist: &Netlist, points: usize, cycles_per_point: u32, seed: u64) -> Self {
        let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(1);
        let mut next = move || {
            // xorshift64*
            state ^= state >> 12;
            state ^= state << 25;
            state ^= state >> 27;
            state.wrapping_mul(0x2545_F491_4F6C_DD1D)
        };
        let inputs: Vec<(String, u32)> = netlist
            .data_inputs()
            .filter(|p| p.name != "reset")
            .map(|p| (p.name.clone(), p.info.width))
            .collect();
        let mut out = Vec::with_capacity(points);
        for _ in 0..points {
            let assignment = inputs
                .iter()
                .map(|(name, width)| {
                    let raw = next() as u128;
                    let masked = if *width >= 128 { raw } else { raw & ((1u128 << width) - 1) };
                    (name.clone(), masked)
                })
                .collect();
            out.push(FunctionalPoint { inputs: assignment, cycles: cycles_per_point, check: true });
        }
        Testbench::new(out)
    }
}

/// One failed functional point, with everything the Reviewer needs to reason about it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PointFailure {
    /// Index of the point within the testbench.
    pub index: usize,
    /// The inputs applied.
    pub inputs: Vec<(String, u128)>,
    /// The reference model's outputs.
    pub expected: Vec<(String, u128)>,
    /// The DUT's outputs.
    pub actual: Vec<(String, u128)>,
}

impl PointFailure {
    /// The output ports whose values differ.
    pub fn mismatched_ports(&self) -> Vec<String> {
        let expected: BTreeMap<_, _> = self.expected.iter().cloned().collect();
        self.actual
            .iter()
            .filter(|(name, value)| expected.get(name).map(|e| e != value).unwrap_or(true))
            .map(|(name, _)| name.clone())
            .collect()
    }
}

impl std::fmt::Display for PointFailure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "point {}: inputs {{", self.index)?;
        for (i, (name, value)) in self.inputs.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{name}={value}")?;
        }
        write!(f, "}} expected {{")?;
        for (i, (name, value)) in self.expected.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{name}={value}")?;
        }
        write!(f, "}} got {{")?;
        for (i, (name, value)) in self.actual.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{name}={value}")?;
        }
        write!(f, "}}")
    }
}

/// The outcome of running a testbench.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct SimReport {
    /// Number of checked functional points.
    pub total_points: usize,
    /// The failures, in point order.
    pub failures: Vec<PointFailure>,
}

impl SimReport {
    /// True when every checked point matched.
    pub fn passed(&self) -> bool {
        self.failures.is_empty()
    }

    /// Number of checked points that passed.
    pub fn passed_points(&self) -> usize {
        self.total_points - self.failures.len()
    }

    /// Pass rate in [0, 1]; an empty testbench counts as passed.
    pub fn pass_rate(&self) -> f64 {
        if self.total_points == 0 {
            1.0
        } else {
            self.passed_points() as f64 / self.total_points as f64
        }
    }
}

/// Runs `testbench` against a DUT and a reference netlist, comparing outputs at every
/// checked point.
///
/// # Errors
///
/// Returns a [`SimError`] when either simulation fails structurally (e.g. the DUT is
/// missing a port that the testbench drives). Functional mismatches are *not* errors;
/// they are reported in the returned [`SimReport`].
pub fn run_testbench(
    dut: &Netlist,
    reference: &Netlist,
    testbench: &Testbench,
) -> Result<SimReport, SimError> {
    let mut dut_sim = Simulator::new(dut.clone());
    let mut ref_sim = Simulator::new(reference.clone());
    run_testbench_on(&mut dut_sim, &mut ref_sim, testbench)
}

/// Runs `testbench` against DUT and reference netlists using the chosen execution
/// engine — [`run_testbench`] with an [`EngineKind`] knob.
///
/// # Errors
///
/// Same conditions as [`run_testbench`]; additionally, [`EngineKind::Compiled`]
/// reports structural netlist problems eagerly (at tape compilation) instead of at the
/// first evaluation.
pub fn run_testbench_with(
    engine: EngineKind,
    dut: &Netlist,
    reference: &Netlist,
    testbench: &Testbench,
) -> Result<SimReport, SimError> {
    let mut dut_sim = engine.simulator(dut)?;
    let mut ref_sim = engine.simulator(reference)?;
    run_testbench_on(dut_sim.as_mut(), ref_sim.as_mut(), testbench)
}

/// Runs `testbench` against two already-constructed engines (not necessarily of the
/// same kind), comparing outputs at every checked point.
///
/// This is the engine-agnostic core of [`run_testbench`]: callers that cache a
/// compiled reference tape per benchmark case instantiate the reference side from the
/// shared tape and hand both engines here.
///
/// Stimulus values that do not apply — ports missing on one side, or out-of-range
/// literals — are skipped on that side; a DUT whose interface does not match the
/// testbench simply diverges at the comparison.
///
/// # Errors
///
/// Returns a [`SimError`] when either simulation fails structurally. Functional
/// mismatches are *not* errors; they are reported in the returned [`SimReport`].
pub fn run_testbench_on(
    dut_sim: &mut dyn SimEngine,
    ref_sim: &mut dyn SimEngine,
    testbench: &Testbench,
) -> Result<SimReport, SimError> {
    if testbench.reset_cycles > 0 {
        dut_sim.reset(testbench.reset_cycles)?;
        ref_sim.reset(testbench.reset_cycles)?;
    }
    let mut report = SimReport::default();
    for (index, point) in testbench.points.iter().enumerate() {
        for (name, value) in &point.inputs {
            // Drive only ports that exist (and fit) on each side; a DUT with a missing
            // or narrower port will simply diverge at the comparison.
            let _ = ref_sim.poke(name, *value);
            let _ = dut_sim.poke(name, *value);
        }
        if point.cycles == 0 {
            dut_sim.eval()?;
            ref_sim.eval()?;
        } else {
            dut_sim.step_n(point.cycles)?;
            ref_sim.step_n(point.cycles)?;
        }
        if !point.check {
            continue;
        }
        report.total_points += 1;
        let expected = ref_sim.outputs();
        let actual = dut_sim.outputs();
        if expected != actual {
            report.failures.push(PointFailure {
                index,
                inputs: point.inputs.clone(),
                expected,
                actual,
            });
        }
    }
    Ok(report)
}

/// The reference model's outputs at every **checked** point of a testbench, in point
/// order — a pre-recorded "expected" side for [`run_testbench_against_trace`].
pub type OutputTrace = Vec<Vec<(String, u128)>>;

/// Walks `testbench` on the reference engine alone and records its outputs at every
/// checked point.
///
/// The trace depends only on the reference and the testbench, so a benchmark case can
/// record it **once** and compare every candidate DUT (every sample of the case)
/// against it — one reference tape walk per case instead of one per sample.
///
/// # Errors
///
/// Returns a [`SimError`] when the reference simulation fails structurally.
pub fn record_reference_trace(
    ref_sim: &mut dyn SimEngine,
    testbench: &Testbench,
) -> Result<OutputTrace, SimError> {
    if testbench.reset_cycles > 0 {
        ref_sim.reset(testbench.reset_cycles)?;
    }
    let mut trace = Vec::with_capacity(testbench.checked_points());
    for point in &testbench.points {
        for (name, value) in &point.inputs {
            let _ = ref_sim.poke(name, *value);
        }
        if point.cycles == 0 {
            ref_sim.eval()?;
        } else {
            ref_sim.step_n(point.cycles)?;
        }
        if point.check {
            trace.push(ref_sim.outputs());
        }
    }
    Ok(trace)
}

/// Runs `testbench` on a DUT engine alone, comparing every checked point against a
/// pre-recorded reference [`OutputTrace`].
///
/// Produces a report bit-identical to [`run_testbench_on`] with a live reference —
/// same poke-skipping rules, same failure details — but the reference side is read
/// from the trace instead of re-simulated per DUT.
///
/// # Errors
///
/// Returns a [`SimError`] when the DUT simulation fails structurally. Functional
/// mismatches are *not* errors; they are reported in the returned [`SimReport`].
pub fn run_testbench_against_trace(
    dut_sim: &mut dyn SimEngine,
    trace: &OutputTrace,
    testbench: &Testbench,
) -> Result<SimReport, SimError> {
    if testbench.reset_cycles > 0 {
        dut_sim.reset(testbench.reset_cycles)?;
    }
    let mut report = SimReport::default();
    let mut expected_at = trace.iter();
    for (index, point) in testbench.points.iter().enumerate() {
        for (name, value) in &point.inputs {
            let _ = dut_sim.poke(name, *value);
        }
        if point.cycles == 0 {
            dut_sim.eval()?;
        } else {
            dut_sim.step_n(point.cycles)?;
        }
        if !point.check {
            continue;
        }
        report.total_points += 1;
        let expected = expected_at.next().expect("trace covers every checked point").clone();
        let actual = dut_sim.outputs();
        if expected != actual {
            report.failures.push(PointFailure {
                index,
                inputs: point.inputs.clone(),
                expected,
                actual,
            });
        }
    }
    Ok(report)
}

/// Runs a **combinational** testbench through a [`BatchedSimulator`], evaluating up to
/// `lanes` checked points per tape walk, against a pre-recorded reference trace.
///
/// Each checked point rides its own lane: the lane replays the chronological poke
/// prefix of its point (reproducing the serial input-persistence semantics, including
/// pokes that do not apply to this DUT and leave the previous value in place), then a
/// single `eval` settles the whole chunk. The report is bit-identical to the serial
/// [`run_testbench_against_trace`] walk.
///
/// # Errors
///
/// Returns a [`SimError`] only if the reset preamble fails structurally (cannot happen
/// for tapes produced by `Tape::compile`).
///
/// # Panics
///
/// Panics (debug assertion) when `testbench` is not combinational — sequential points
/// carry state between points and cannot be lane-parallelized.
pub fn run_testbench_batched(
    dut_sim: &mut BatchedSimulator,
    trace: &OutputTrace,
    testbench: &Testbench,
) -> Result<SimReport, SimError> {
    debug_assert!(testbench.is_combinational(), "batched point-parallel runs are comb-only");
    let lanes = dut_sim.lanes();
    if testbench.reset_cycles > 0 {
        dut_sim.reset(testbench.reset_cycles)?;
    }
    let checked: Vec<usize> = testbench
        .points
        .iter()
        .enumerate()
        .filter(|(_, p)| p.check)
        .map(|(index, _)| index)
        .collect();
    let mut report = SimReport::default();
    let mut expected_at = trace.iter();
    for chunk in checked.chunks(lanes) {
        for (lane, &pi) in chunk.iter().enumerate() {
            for point in &testbench.points[..=pi] {
                for (name, value) in &point.inputs {
                    let _ = dut_sim.poke(lane, name, *value);
                }
            }
        }
        dut_sim.eval();
        for (lane, &pi) in chunk.iter().enumerate() {
            report.total_points += 1;
            let expected = expected_at.next().expect("trace covers every checked point").clone();
            let actual = dut_sim.outputs(lane);
            if expected != actual {
                report.failures.push(PointFailure {
                    index: pi,
                    inputs: testbench.points[pi].inputs.clone(),
                    expected,
                    actual,
                });
            }
        }
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rechisel_firrtl::lower_circuit;
    use rechisel_hcl::prelude::*;

    fn adder() -> Netlist {
        let mut m = ModuleBuilder::new("Adder");
        let a = m.input("a", Type::uint(8));
        let b = m.input("b", Type::uint(8));
        let out = m.output("out", Type::uint(9));
        m.connect(&out, &a.add(&b));
        lower_circuit(&m.into_circuit()).unwrap()
    }

    fn broken_adder() -> Netlist {
        let mut m = ModuleBuilder::new("Adder");
        let a = m.input("a", Type::uint(8));
        let b = m.input("b", Type::uint(8));
        let out = m.output("out", Type::uint(9));
        // Off-by-one functional defect.
        m.connect(&out, &a.add(&b).add(&Signal::lit_w(1, 9)).bits(8, 0));
        lower_circuit(&m.into_circuit()).unwrap()
    }

    #[test]
    fn identical_designs_pass() {
        let tb = Testbench::random_for(&adder(), 20, 0, 7);
        let report = run_testbench(&adder(), &adder(), &tb).unwrap();
        assert!(report.passed());
        assert_eq!(report.total_points, 20);
        assert_eq!(report.pass_rate(), 1.0);
    }

    #[test]
    fn functional_defect_is_detected_with_details() {
        let tb = Testbench::random_for(&adder(), 10, 0, 7);
        let report = run_testbench(&broken_adder(), &adder(), &tb).unwrap();
        assert!(!report.passed());
        assert_eq!(report.failures.len(), 10);
        let failure = &report.failures[0];
        assert_eq!(failure.mismatched_ports(), vec!["out".to_string()]);
        let text = failure.to_string();
        assert!(text.contains("expected"));
        assert!(text.contains("got"));
    }

    #[test]
    fn random_testbench_is_deterministic() {
        let a = Testbench::random_for(&adder(), 5, 0, 42);
        let b = Testbench::random_for(&adder(), 5, 0, 42);
        let c = Testbench::random_for(&adder(), 5, 0, 43);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn sequential_testbench_exercises_state() {
        let counter = |bug: bool| {
            let mut m = ModuleBuilder::new("Counter");
            let en = m.input("en", Type::bool());
            let out = m.output("out", Type::uint(8));
            let count = m.reg_init("count", Type::uint(8), &Signal::lit_w(0, 8));
            let step = if bug { 2 } else { 1 };
            m.when(&en, |m| {
                let next = count.add(&Signal::lit_w(step, 8)).bits(7, 0);
                m.connect(&count, &next);
            });
            m.connect(&out, &count);
            lower_circuit(&m.into_circuit()).unwrap()
        };
        let tb = Testbench::new(vec![
            FunctionalPoint::seq(vec![("en".into(), 1)], 1),
            FunctionalPoint::seq(vec![("en".into(), 1)], 1),
            FunctionalPoint::seq(vec![("en".into(), 0)], 1),
        ]);
        let ok = run_testbench(&counter(false), &counter(false), &tb).unwrap();
        assert!(ok.passed());
        let bad = run_testbench(&counter(true), &counter(false), &tb).unwrap();
        assert!(!bad.passed());
        assert_eq!(bad.total_points, 3);
    }

    #[test]
    fn engines_produce_identical_reports() {
        let tb = Testbench::random_for(&adder(), 16, 0, 9);
        let interp =
            run_testbench_with(EngineKind::Interp, &broken_adder(), &adder(), &tb).unwrap();
        let compiled =
            run_testbench_with(EngineKind::Compiled, &broken_adder(), &adder(), &tb).unwrap();
        assert_eq!(interp, compiled);
        assert!(!compiled.passed());
        // The legacy entry point is the interpreter path.
        assert_eq!(run_testbench(&broken_adder(), &adder(), &tb).unwrap(), interp);
        // Mixed engines agree too: the interpreter DUT vs the compiled reference.
        let mut dut = Simulator::new(adder());
        let mut reference = EngineKind::Compiled.simulator(&adder()).unwrap();
        let mixed = run_testbench_on(&mut dut, reference.as_mut(), &tb).unwrap();
        assert!(mixed.passed());
    }

    #[test]
    fn setup_points_are_not_checked() {
        let tb = Testbench::new(vec![
            FunctionalPoint::setup(vec![("a".into(), 1), ("b".into(), 2)], 0),
            FunctionalPoint::comb(vec![("a".into(), 3), ("b".into(), 4)]),
        ]);
        assert_eq!(tb.checked_points(), 1);
        let report = run_testbench(&adder(), &adder(), &tb).unwrap();
        assert_eq!(report.total_points, 1);
    }
}
