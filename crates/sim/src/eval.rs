//! Expression evaluation over ground signals.
//!
//! The simulator evaluates lowered [`Expression`]s (the ground subset produced by
//! `rechisel_firrtl::lower`) against an environment mapping signal names to bit values.
//! Values are stored as `u128` bit patterns masked to the signal width; signed
//! interpretation happens locally inside the operations that need it.
//!
//! # Word-size semantics
//!
//! The physical word is [`WORD_BITS`] (= 128) bits. Operator result widths saturate at
//! the word size (an `add` of two 128-bit values still produces a 128-bit result, i.e.
//! arithmetic is performed modulo 2^128), and shifting by the word size or more yields
//! zero for logical shifts and sign-fill for arithmetic shifts — never a panic or a
//! wrapped shift amount. Every engine (interpreter, compiled tape, batched lanes) runs
//! through [`apply_prim`], so these rules hold uniformly.

use std::collections::BTreeMap;

use rechisel_firrtl::ir::{Expression, PrimOp};
use rechisel_firrtl::lower::SignalInfo;

/// The result of evaluating an expression: a bit pattern plus its physical
/// interpretation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EvalValue {
    /// Bit pattern, masked to `width`.
    pub bits: u128,
    /// Width in bits (0..=[`WORD_BITS`]; operator results saturate at the word size).
    pub width: u32,
    /// Two's-complement signed interpretation.
    pub signed: bool,
}

impl EvalValue {
    /// Creates a value, masking `bits` to `width`.
    pub fn new(bits: u128, width: u32, signed: bool) -> Self {
        Self { bits: mask(bits, width), width, signed }
    }

    /// Unsigned value of the bit pattern.
    pub fn as_u128(&self) -> u128 {
        self.bits
    }

    /// Signed (two's complement) interpretation of the bit pattern.
    ///
    /// Sign-extends through bit 127 with a shift pair rather than subtracting
    /// `1 << width` — the subtraction form overflows `i128` at width 127, and at
    /// width 128 the bit pattern already *is* the two's-complement value.
    pub fn as_i128(&self) -> i128 {
        if self.signed && self.width > 0 && self.width < 128 {
            let shift = 128 - self.width;
            ((self.bits << shift) as i128) >> shift
        } else {
            self.bits as i128
        }
    }
}

/// The physical word size in bits: values are stored as `u128` bit patterns, so
/// operator result widths saturate here and wider arithmetic wraps modulo 2^128.
pub const WORD_BITS: u32 = 128;

/// Masks `bits` to the lowest `width` bits.
pub fn mask(bits: u128, width: u32) -> u128 {
    if width == 0 {
        0
    } else if width >= WORD_BITS {
        bits
    } else {
        bits & ((1u128 << width) - 1)
    }
}

/// Shifts `bits` left by `amount`, yielding zero once the shift amount reaches the
/// word size (a raw `<<` would panic in debug builds and wrap the amount in release).
pub fn shl_bits(bits: u128, amount: u32) -> u128 {
    bits.checked_shl(amount).unwrap_or(0)
}

/// Logical right shift with the same over-shift-to-zero guarantee as [`shl_bits`].
pub fn shr_bits(bits: u128, amount: u32) -> u128 {
    bits.checked_shr(amount).unwrap_or(0)
}

/// Contents and physical properties of one memory during interpretation.
///
/// Words are stored as bit patterns masked to the word width; an out-of-range read
/// returns zero (both engines agree on this by differential fuzzing).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MemState {
    /// Physical properties of one word.
    pub info: SignalInfo,
    /// The backing store, one entry per word.
    pub words: Vec<u128>,
}

impl MemState {
    /// A zero-initialised memory of `depth` words.
    pub fn new(info: SignalInfo, depth: usize) -> Self {
        Self { info, words: vec![0; depth] }
    }

    /// A memory of `depth` words preloaded from `init` (each word masked to the word
    /// width); words beyond the image start as zero.
    pub fn with_init(info: SignalInfo, depth: usize, init: &[u128]) -> Self {
        let mut state = Self::new(info, depth);
        for (word, value) in state.words.iter_mut().zip(init) {
            *word = mask(*value, info.width);
        }
        state
    }
}

/// Errors produced by evaluation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EvalError {
    /// A referenced signal has no value in the environment.
    UnknownSignal(String),
    /// An expression form that lowering should have eliminated was encountered.
    UnsupportedExpression(String),
}

impl std::fmt::Display for EvalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EvalError::UnknownSignal(name) => write!(f, "unknown signal {name}"),
            EvalError::UnsupportedExpression(what) => {
                write!(f, "unsupported expression during simulation: {what}")
            }
        }
    }
}

impl std::error::Error for EvalError {}

/// Evaluates a ground expression.
///
/// `env` maps signal names to their current values, and `infos` provides width/sign
/// information for referenced signals.
///
/// # Errors
///
/// Returns [`EvalError::UnknownSignal`] for dangling references and
/// [`EvalError::UnsupportedExpression`] for non-ground expression forms.
pub fn eval_expr(
    expr: &Expression,
    env: &BTreeMap<String, u128>,
    infos: &BTreeMap<String, SignalInfo>,
) -> Result<EvalValue, EvalError> {
    eval_expr_with_mems(expr, env, infos, &BTreeMap::new())
}

/// Evaluates a ground expression with memory read ports in scope.
///
/// Identical to [`eval_expr`], plus support for [`Expression::MemRead`]: the addressed
/// word of `mems[name]` is returned with the memory's word metadata; out-of-range
/// addresses read as zero.
///
/// # Errors
///
/// Same conditions as [`eval_expr`]; a read of an unknown memory reports
/// [`EvalError::UnknownSignal`].
pub fn eval_expr_with_mems(
    expr: &Expression,
    env: &BTreeMap<String, u128>,
    infos: &BTreeMap<String, SignalInfo>,
    mems: &BTreeMap<String, MemState>,
) -> Result<EvalValue, EvalError> {
    match expr {
        Expression::Ref(name) => {
            let bits = *env.get(name).ok_or_else(|| EvalError::UnknownSignal(name.clone()))?;
            let info = infos.get(name).copied().unwrap_or(SignalInfo {
                width: 64,
                signed: false,
                is_clock: false,
            });
            Ok(EvalValue::new(bits, info.width, info.signed))
        }
        Expression::UIntLiteral { value, width } => {
            let w = width.unwrap_or_else(|| min_width(*value));
            Ok(EvalValue::new(*value, w, false))
        }
        Expression::SIntLiteral { value, width } => {
            let w = width.unwrap_or(64);
            Ok(EvalValue::new(*value as u128, w, true))
        }
        Expression::Mux { cond, tval, fval } => {
            let c = eval_expr_with_mems(cond, env, infos, mems)?;
            if c.bits & 1 != 0 {
                eval_expr_with_mems(tval, env, infos, mems)
            } else {
                eval_expr_with_mems(fval, env, infos, mems)
            }
        }
        Expression::MemRead { mem, addr, sync: false, .. } => {
            let state = mems.get(mem).ok_or_else(|| EvalError::UnknownSignal(mem.clone()))?;
            let a = eval_expr_with_mems(addr, env, infos, mems)?.as_u128();
            let word = if a < state.words.len() as u128 { state.words[a as usize] } else { 0 };
            Ok(EvalValue::new(word, state.info.width, state.info.signed))
        }
        // Sequential reads never reach expression evaluation: lowering hoists each
        // one into an implicit read register whose next-state is the combinational
        // read above. A surviving sync read means the netlist skipped lowering.
        Expression::MemRead { sync: true, .. } => {
            Err(EvalError::UnsupportedExpression(expr.to_string()))
        }
        Expression::Prim { op, args, params } => eval_prim(*op, args, params, env, infos, mems),
        other => Err(EvalError::UnsupportedExpression(other.to_string())),
    }
}

pub(crate) fn min_width(value: u128) -> u32 {
    if value == 0 {
        1
    } else {
        128 - value.leading_zeros()
    }
}

fn eval_prim(
    op: PrimOp,
    args: &[Expression],
    params: &[i64],
    env: &BTreeMap<String, u128>,
    infos: &BTreeMap<String, SignalInfo>,
    mems: &BTreeMap<String, MemState>,
) -> Result<EvalValue, EvalError> {
    let a = eval_expr_with_mems(&args[0], env, infos, mems)?;
    let b =
        if args.len() > 1 { Some(eval_expr_with_mems(&args[1], env, infos, mems)?) } else { None };
    Ok(apply_prim(op, a, b, params))
}

/// Applies a primitive operation to already-evaluated operands.
///
/// This is the single source of truth for operator semantics (bit patterns, result
/// widths, signedness): the tree-walking interpreter calls it per node, and the
/// compiled engine calls it per tape instruction, so the two can never drift apart.
///
/// # Panics
///
/// Panics when a binary operation is applied without a second operand or a
/// parameterized operation without its parameters — conditions that lowering never
/// produces (compiled tapes reject them at build time instead).
pub fn apply_prim(op: PrimOp, a: EvalValue, b: Option<EvalValue>, params: &[i64]) -> EvalValue {
    use PrimOp::*;
    match op {
        Add => {
            let b = b.expect("binary op");
            let w = a.width.max(b.width).saturating_add(1).min(WORD_BITS);
            let signed = a.signed || b.signed;
            EvalValue::new((a.as_i128().wrapping_add(b.as_i128())) as u128, w, signed)
        }
        Sub => {
            let b = b.expect("binary op");
            let w = a.width.max(b.width).saturating_add(1).min(WORD_BITS);
            let signed = a.signed || b.signed;
            EvalValue::new((a.as_i128().wrapping_sub(b.as_i128())) as u128, w, signed)
        }
        Mul => {
            let b = b.expect("binary op");
            let w = a.width.saturating_add(b.width).min(WORD_BITS);
            let signed = a.signed || b.signed;
            EvalValue::new((a.as_i128().wrapping_mul(b.as_i128())) as u128, w, signed)
        }
        Div => {
            let b = b.expect("binary op");
            let signed = a.signed || b.signed;
            let value = if b.as_i128() == 0 {
                0
            } else if signed {
                a.as_i128().wrapping_div(b.as_i128()) as u128
            } else {
                a.as_u128() / b.as_u128()
            };
            EvalValue::new(value, a.width.saturating_add(u32::from(signed)).min(WORD_BITS), signed)
        }
        Rem => {
            let b = b.expect("binary op");
            let signed = a.signed || b.signed;
            let value = if b.as_i128() == 0 {
                0
            } else if signed {
                a.as_i128().wrapping_rem(b.as_i128()) as u128
            } else {
                a.as_u128() % b.as_u128()
            };
            EvalValue::new(value, a.width.min(b.width), signed)
        }
        And | Or | Xor => {
            let b = b.expect("binary op");
            let w = a.width.max(b.width);
            let value = match op {
                And => a.bits & b.bits,
                Or => a.bits | b.bits,
                _ => a.bits ^ b.bits,
            };
            EvalValue::new(value, w, false)
        }
        Not => EvalValue::new(!a.bits, a.width, false),
        Eq => EvalValue::new(u128::from(a.as_i128() == b.expect("binary op").as_i128()), 1, false),
        Neq => EvalValue::new(u128::from(a.as_i128() != b.expect("binary op").as_i128()), 1, false),
        Lt => EvalValue::new(
            u128::from(cmp(a, b.expect("binary op")) == std::cmp::Ordering::Less),
            1,
            false,
        ),
        Leq => EvalValue::new(
            u128::from(cmp(a, b.expect("binary op")) != std::cmp::Ordering::Greater),
            1,
            false,
        ),
        Gt => EvalValue::new(
            u128::from(cmp(a, b.expect("binary op")) == std::cmp::Ordering::Greater),
            1,
            false,
        ),
        Geq => EvalValue::new(
            u128::from(cmp(a, b.expect("binary op")) != std::cmp::Ordering::Less),
            1,
            false,
        ),
        // Shift semantics (explicit, shared by every engine): the result width
        // saturates at the word size, a logical over-shift yields zero, and an
        // arithmetic right over-shift yields pure sign fill.
        Shl => {
            let amount = params[0].max(0) as u32;
            let w = a.width.saturating_add(amount).min(WORD_BITS);
            EvalValue::new(shl_bits(a.bits, amount), w, a.signed)
        }
        Shr => {
            let amount = params[0].max(0) as u32;
            let value = if a.signed {
                (a.as_i128() >> amount.min(WORD_BITS - 1)) as u128
            } else {
                shr_bits(a.bits, amount)
            };
            EvalValue::new(value, a.width.saturating_sub(amount).max(1), a.signed)
        }
        Dshl => {
            let b = b.expect("binary op");
            let amount = b.as_u128().min(u128::from(WORD_BITS)) as u32;
            let w = a.width.saturating_add(amount).min(WORD_BITS);
            EvalValue::new(shl_bits(a.bits, amount), w, a.signed)
        }
        Dshr => {
            let b = b.expect("binary op");
            let amount = b.as_u128().min(u128::from(WORD_BITS)) as u32;
            let value = if a.signed {
                (a.as_i128() >> amount.min(WORD_BITS - 1)) as u128
            } else {
                shr_bits(a.bits, amount)
            };
            EvalValue::new(value, a.width, a.signed)
        }
        Cat => {
            let b = b.expect("binary op");
            let w = a.width.saturating_add(b.width).min(WORD_BITS);
            EvalValue::new(shl_bits(a.bits, b.width) | b.bits, w, false)
        }
        Bits => {
            let hi = params[0].max(0) as u32;
            let lo = params[1].max(0) as u32;
            let w = (hi.saturating_sub(lo) + 1).min(WORD_BITS);
            EvalValue::new(shr_bits(a.bits, lo), w, false)
        }
        AndR => EvalValue::new(u128::from(a.bits == mask(u128::MAX, a.width)), 1, false),
        OrR => EvalValue::new(u128::from(a.bits != 0), 1, false),
        XorR => EvalValue::new(u128::from(a.bits.count_ones() % 2 == 1), 1, false),
        AsUInt => EvalValue::new(a.bits, a.width, false),
        AsSInt => EvalValue::new(a.bits, a.width, true),
        AsBool => EvalValue::new(a.bits & 1, 1, false),
        AsClock => EvalValue::new(a.bits & 1, 1, false),
        AsAsyncReset => EvalValue::new(a.bits & 1, 1, false),
        Neg => EvalValue::new(
            a.as_i128().wrapping_neg() as u128,
            a.width.saturating_add(1).min(WORD_BITS),
            true,
        ),
        Pad => {
            let target = params[0].max(0) as u32;
            let w = a.width.max(target).min(WORD_BITS);
            let value = if a.signed { a.as_i128() as u128 } else { a.bits };
            EvalValue::new(value, w, a.signed)
        }
        Tail => {
            let drop = params[0].max(0) as u32;
            let w = a.width.saturating_sub(drop).max(1);
            EvalValue::new(a.bits, w, false)
        }
        Head => {
            let keep = params[0].max(0) as u32;
            let keep = keep.max(1);
            let shift = a.width.saturating_sub(keep);
            EvalValue::new(shr_bits(a.bits, shift), keep, false)
        }
    }
}

fn cmp(a: EvalValue, b: EvalValue) -> std::cmp::Ordering {
    if a.signed || b.signed {
        a.as_i128().cmp(&b.as_i128())
    } else {
        a.as_u128().cmp(&b.as_u128())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn env_of(
        pairs: &[(&str, u128, u32, bool)],
    ) -> (BTreeMap<String, u128>, BTreeMap<String, SignalInfo>) {
        let mut env = BTreeMap::new();
        let mut infos = BTreeMap::new();
        for (name, value, width, signed) in pairs {
            env.insert(name.to_string(), *value);
            infos.insert(
                name.to_string(),
                SignalInfo { width: *width, signed: *signed, is_clock: false },
            );
        }
        (env, infos)
    }

    fn eval(expr: &Expression, pairs: &[(&str, u128, u32, bool)]) -> EvalValue {
        let (env, infos) = env_of(pairs);
        eval_expr(expr, &env, &infos).unwrap()
    }

    #[test]
    fn masking_and_sign() {
        assert_eq!(mask(0xFF, 4), 0xF);
        let v = EvalValue::new(0b1000, 4, true);
        assert_eq!(v.as_i128(), -8);
        let v = EvalValue::new(0b0111, 4, true);
        assert_eq!(v.as_i128(), 7);
    }

    #[test]
    fn add_and_mul() {
        let e = Expression::prim(
            PrimOp::Add,
            vec![Expression::reference("a"), Expression::reference("b")],
            vec![],
        );
        let v = eval(&e, &[("a", 200, 8, false), ("b", 100, 8, false)]);
        assert_eq!(v.bits, 300);
        assert_eq!(v.width, 9);
        let e = Expression::prim(
            PrimOp::Mul,
            vec![Expression::reference("a"), Expression::reference("b")],
            vec![],
        );
        let v = eval(&e, &[("a", 15, 4, false), ("b", 15, 4, false)]);
        assert_eq!(v.bits, 225);
    }

    #[test]
    fn subtraction_wraps_in_width() {
        let e = Expression::prim(
            PrimOp::Sub,
            vec![Expression::reference("a"), Expression::reference("b")],
            vec![],
        );
        let v = eval(&e, &[("a", 3, 8, false), ("b", 5, 8, false)]);
        // 3 - 5 = -2 masked into 9 bits.
        assert_eq!(v.bits, mask((-2i128) as u128, 9));
    }

    #[test]
    fn signed_comparison() {
        let e = Expression::prim(
            PrimOp::Lt,
            vec![Expression::reference("a"), Expression::reference("b")],
            vec![],
        );
        // a = -1 (0xF in 4-bit signed), b = 2.
        let v = eval(&e, &[("a", 0xF, 4, true), ("b", 2, 4, true)]);
        assert_eq!(v.bits, 1);
        // Unsigned: 0xF > 2.
        let v = eval(&e, &[("a", 0xF, 4, false), ("b", 2, 4, false)]);
        assert_eq!(v.bits, 0);
    }

    #[test]
    fn division_by_zero_is_zero() {
        let e = Expression::prim(
            PrimOp::Div,
            vec![Expression::reference("a"), Expression::reference("b")],
            vec![],
        );
        let v = eval(&e, &[("a", 7, 4, false), ("b", 0, 4, false)]);
        assert_eq!(v.bits, 0);
    }

    #[test]
    fn cat_bits_and_reductions() {
        let cat = Expression::prim(
            PrimOp::Cat,
            vec![Expression::reference("a"), Expression::reference("b")],
            vec![],
        );
        let v = eval(&cat, &[("a", 0b10, 2, false), ("b", 0b11, 2, false)]);
        assert_eq!(v.bits, 0b1011);
        assert_eq!(v.width, 4);

        let bits = Expression::prim(PrimOp::Bits, vec![Expression::reference("a")], vec![2, 1]);
        let v = eval(&bits, &[("a", 0b1010, 4, false)]);
        assert_eq!(v.bits, 0b01);

        let orr = Expression::prim(PrimOp::OrR, vec![Expression::reference("a")], vec![]);
        assert_eq!(eval(&orr, &[("a", 0, 4, false)]).bits, 0);
        assert_eq!(eval(&orr, &[("a", 2, 4, false)]).bits, 1);

        let andr = Expression::prim(PrimOp::AndR, vec![Expression::reference("a")], vec![]);
        assert_eq!(eval(&andr, &[("a", 0xF, 4, false)]).bits, 1);
        assert_eq!(eval(&andr, &[("a", 0x7, 4, false)]).bits, 0);

        let xorr = Expression::prim(PrimOp::XorR, vec![Expression::reference("a")], vec![]);
        assert_eq!(eval(&xorr, &[("a", 0b101, 3, false)]).bits, 0);
        assert_eq!(eval(&xorr, &[("a", 0b100, 3, false)]).bits, 1);
    }

    #[test]
    fn mux_selects() {
        let e = Expression::mux(
            Expression::reference("sel"),
            Expression::reference("a"),
            Expression::reference("b"),
        );
        let v = eval(&e, &[("sel", 1, 1, false), ("a", 5, 4, false), ("b", 9, 4, false)]);
        assert_eq!(v.bits, 5);
        let v = eval(&e, &[("sel", 0, 1, false), ("a", 5, 4, false), ("b", 9, 4, false)]);
        assert_eq!(v.bits, 9);
    }

    #[test]
    fn shifts() {
        let shl = Expression::prim(PrimOp::Shl, vec![Expression::reference("a")], vec![2]);
        assert_eq!(eval(&shl, &[("a", 0b11, 2, false)]).bits, 0b1100);
        let dshr = Expression::prim(
            PrimOp::Dshr,
            vec![Expression::reference("a"), Expression::reference("s")],
            vec![],
        );
        assert_eq!(eval(&dshr, &[("a", 0b1100, 4, false), ("s", 2, 2, false)]).bits, 0b11);
    }

    #[test]
    fn unknown_signal_is_an_error() {
        let (env, infos) = env_of(&[]);
        let err = eval_expr(&Expression::reference("ghost"), &env, &infos).unwrap_err();
        assert!(matches!(err, EvalError::UnknownSignal(_)));
        assert_eq!(err.to_string(), "unknown signal ghost");
        // Unknown signals are detected inside nested operands and mux branches too.
        let nested = Expression::prim(
            PrimOp::Add,
            vec![Expression::uint_lit(1), Expression::reference("ghost")],
            vec![],
        );
        assert!(
            matches!(eval_expr(&nested, &env, &infos), Err(EvalError::UnknownSignal(n)) if n == "ghost")
        );
        let mux = Expression::mux(
            Expression::uint_lit(1),
            Expression::reference("ghost"),
            Expression::uint_lit(0),
        );
        assert!(matches!(eval_expr(&mux, &env, &infos), Err(EvalError::UnknownSignal(_))));
    }

    #[test]
    fn non_ground_expressions_are_unsupported() {
        let (env, infos) = env_of(&[("x", 1, 4, false)]);
        let field = Expression::SubField(Box::new(Expression::reference("x")), "f".into());
        let err = eval_expr(&field, &env, &infos).unwrap_err();
        assert!(matches!(err, EvalError::UnsupportedExpression(_)));
        assert_eq!(err.to_string(), "unsupported expression during simulation: x.f");

        let cast = Expression::ScalaCast {
            arg: Box::new(Expression::reference("x")),
            target: "SInt".into(),
        };
        let err = eval_expr(&cast, &env, &infos).unwrap_err();
        assert!(matches!(err, EvalError::UnsupportedExpression(w) if w.contains("asInstanceOf")));

        let apply = Expression::BadApply {
            target: Box::new(Expression::reference("x")),
            args: vec![Expression::uint_lit(0)],
        };
        assert!(matches!(
            eval_expr(&apply, &env, &infos),
            Err(EvalError::UnsupportedExpression(_))
        ));
        let index = Expression::SubIndex(Box::new(Expression::reference("x")), 0);
        assert!(matches!(
            eval_expr(&index, &env, &infos),
            Err(EvalError::UnsupportedExpression(_))
        ));
    }

    #[test]
    fn apply_prim_matches_tree_evaluation() {
        // The shared kernel is what both engines execute; spot-check it directly.
        let a = EvalValue::new(200, 8, false);
        let b = EvalValue::new(100, 8, false);
        let sum = apply_prim(PrimOp::Add, a, Some(b), &[]);
        assert_eq!((sum.bits, sum.width, sum.signed), (300, 9, false));
        let sliced = apply_prim(PrimOp::Bits, sum, None, &[3, 1]);
        assert_eq!((sliced.bits, sliced.width), ((300 >> 1) & 0b111, 3));
        let neg = apply_prim(PrimOp::Neg, EvalValue::new(3, 4, false), None, &[]);
        assert_eq!(neg.as_i128(), -3);
    }

    #[test]
    fn width_zero_masks_everything_away() {
        assert_eq!(mask(u128::MAX, 0), 0);
        assert_eq!(mask(1, 0), 0);
        let v = EvalValue::new(0b1011, 0, false);
        assert_eq!(v.bits, 0);
        assert_eq!(v.as_u128(), 0);
        // Signed interpretation of a zero-width value is still zero (no sign bit).
        let v = EvalValue::new(0b1011, 0, true);
        assert_eq!(v.as_i128(), 0);
        // A width-0 signal in the environment reads back as zero regardless of the
        // stored bit pattern.
        let e = Expression::reference("z");
        let v = eval(&e, &[("z", 0xDEAD, 0, false)]);
        assert_eq!(v.bits, 0);
        assert_eq!(v.width, 0);
    }

    #[test]
    fn width_64_boundary_is_not_truncated() {
        let all_ones = u64::MAX as u128;
        assert_eq!(mask(all_ones, 64), all_ones);
        assert_eq!(mask(all_ones << 1 | 1, 64), all_ones);
        let v = eval(&Expression::reference("a"), &[("a", all_ones, 64, false)]);
        assert_eq!(v.bits, all_ones);
        assert_eq!(v.width, 64);
        // Addition at the 64-bit boundary carries into bit 64 instead of wrapping.
        let add = Expression::prim(
            PrimOp::Add,
            vec![Expression::reference("a"), Expression::reference("b")],
            vec![],
        );
        let v = eval(&add, &[("a", all_ones, 64, false), ("b", 1, 64, false)]);
        assert_eq!(v.width, 65);
        assert_eq!(v.bits, 1u128 << 64);
        // Cat of two full 64-bit values fills exactly 128 bits.
        let cat = Expression::prim(
            PrimOp::Cat,
            vec![Expression::reference("a"), Expression::reference("b")],
            vec![],
        );
        let v = eval(&cat, &[("a", all_ones, 64, false), ("b", all_ones, 64, false)]);
        assert_eq!(v.width, 128);
        assert_eq!(v.bits, u128::MAX);
        // 64-bit signed -1 round-trips through the signed interpretation.
        let v = eval(&Expression::reference("s"), &[("s", all_ones, 64, true)]);
        assert_eq!(v.as_i128(), -1);
    }

    #[test]
    fn signed_sub_wraparound() {
        let sub = Expression::prim(
            PrimOp::Sub,
            vec![Expression::reference("a"), Expression::reference("b")],
            vec![],
        );
        // 4-bit signed: (-8) - 7 = -15, held exactly in the 5-bit result.
        let v = eval(&sub, &[("a", 0b1000, 4, true), ("b", 0b0111, 4, true)]);
        assert_eq!(v.width, 5);
        assert!(v.signed);
        assert_eq!(v.as_i128(), -15);
        assert_eq!(v.bits, mask((-15i128) as u128, 5));
        // 7 - (-8) = 15: the most positive 5-bit signed value.
        let v = eval(&sub, &[("a", 0b0111, 4, true), ("b", 0b1000, 4, true)]);
        assert_eq!(v.as_i128(), 15);
        // Re-truncating the 5-bit result to 4 bits (Bits) wraps: -15 -> 0b0001 -> 1.
        let trunc = Expression::prim(
            PrimOp::Bits,
            vec![Expression::prim(
                PrimOp::Sub,
                vec![Expression::reference("a"), Expression::reference("b")],
                vec![],
            )],
            vec![3, 0],
        );
        let v = eval(&trunc, &[("a", 0b1000, 4, true), ("b", 0b0111, 4, true)]);
        assert_eq!(v.bits, 1);
        assert_eq!(v.width, 4);
    }

    #[test]
    fn mask_and_sign_at_the_word_boundary() {
        // Widths 127 and 128 exercise the `1u128 << width` hazards directly.
        assert_eq!(mask(u128::MAX, 127), u128::MAX >> 1);
        assert_eq!(mask(u128::MAX, 128), u128::MAX);
        assert_eq!(shl_bits(1, 127), 1u128 << 127);
        assert_eq!(shl_bits(u128::MAX, 128), 0);
        assert_eq!(shr_bits(u128::MAX, 127), 1);
        assert_eq!(shr_bits(u128::MAX, 128), 0);
        // Signed interpretation: the sign bit of a 127-bit value is bit 126; of a
        // 128-bit value it is bit 127 (plain two's-complement reinterpretation).
        let v = EvalValue::new(1u128 << 126, 127, true);
        assert_eq!(v.as_i128(), -(1i128 << 126));
        let v = EvalValue::new(u128::MAX, 128, true);
        assert_eq!(v.as_i128(), -1);
        let v = EvalValue::new(u128::MAX >> 1, 128, true);
        assert_eq!(v.as_i128(), i128::MAX);
    }

    #[test]
    fn wide_shifts_saturate_instead_of_panicking() {
        let wide = EvalValue::new(u128::MAX, 128, false);
        // shl result width saturates at the word size; shifted-out bits are dropped.
        let v = apply_prim(PrimOp::Shl, wide, None, &[1]);
        assert_eq!((v.bits, v.width), (u128::MAX - 1, 128));
        let v = apply_prim(PrimOp::Shl, wide, None, &[128]);
        assert_eq!((v.bits, v.width), (0, 128));
        // A 120-bit shift amount used to be silently clamped to 100.
        let v = apply_prim(PrimOp::Shr, wide, None, &[120]);
        assert_eq!(v.bits, 0xFF);
        let v = apply_prim(PrimOp::Shr, wide, None, &[200]);
        assert_eq!(v.bits, 0);
        // Arithmetic right over-shift is pure sign fill.
        let sneg = EvalValue::new(u128::MAX, 128, true);
        let v = apply_prim(PrimOp::Shr, sneg, None, &[500]);
        assert_eq!(v.as_i128(), -1);
    }

    #[test]
    fn dynamic_shifts_at_width_128() {
        let wide = EvalValue::new(u128::MAX, 128, false);
        let amt = |n: u128| Some(EvalValue::new(n, 8, false));
        // dshl result width saturates at 128 (not the old 127), so a 1-bit shift of a
        // 127-bit value keeps its top bit.
        let narrow = EvalValue::new(1u128 << 126, 127, false);
        let v = apply_prim(PrimOp::Dshl, narrow, amt(1), &[]);
        assert_eq!((v.bits, v.width), (1u128 << 127, 128));
        // Over-shift yields zero instead of clamping the amount to 100.
        let v = apply_prim(PrimOp::Dshl, wide, amt(120), &[]);
        assert_eq!(v.bits, u128::MAX << 120);
        let big = Some(EvalValue::new(200, 16, false));
        assert_eq!(apply_prim(PrimOp::Dshl, wide, big, &[]).bits, 0);
        assert_eq!(apply_prim(PrimOp::Dshr, wide, big, &[]).bits, 0);
        let v = apply_prim(PrimOp::Dshr, wide, amt(127), &[]);
        assert_eq!(v.bits, 1);
        // Signed dynamic over-shift sign-fills.
        let sneg = EvalValue::new(u128::MAX, 128, true);
        assert_eq!(apply_prim(PrimOp::Dshr, sneg, big, &[]).as_i128(), -1);
    }

    #[test]
    fn cat_add_and_neg_at_the_word_boundary() {
        let wide = EvalValue::new(u128::MAX, 128, false);
        let one = EvalValue::new(1, 128, false);
        // Cat with a 128-bit rhs keeps only the rhs (lhs is shifted past the word).
        let v = apply_prim(PrimOp::Cat, one, Some(wide), &[]);
        assert_eq!((v.bits, v.width), (u128::MAX, 128));
        // Cat of 127+1 bits fills the word exactly.
        let hi = EvalValue::new(u128::MAX >> 1, 127, false);
        let lo1 = EvalValue::new(1, 1, false);
        let v = apply_prim(PrimOp::Cat, hi, Some(lo1), &[]);
        assert_eq!((v.bits, v.width), (u128::MAX, 128));
        // Add at width 128 wraps modulo 2^128 (result width saturates at the word).
        let v = apply_prim(PrimOp::Add, wide, Some(one), &[]);
        assert_eq!((v.bits, v.width), (0, 128));
        // Mul of two 64-bit values lands exactly on the word boundary.
        let m = EvalValue::new(u64::MAX as u128, 64, false);
        let v = apply_prim(PrimOp::Mul, m, Some(m), &[]);
        assert_eq!((v.bits, v.width), ((u64::MAX as u128).wrapping_mul(u64::MAX as u128), 128));
        // Neg of the most negative 128-bit value wraps instead of panicking.
        let min = EvalValue::new(1u128 << 127, 128, true);
        let v = apply_prim(PrimOp::Neg, min, None, &[]);
        assert_eq!((v.bits, v.width), (1u128 << 127, 128));
    }

    #[test]
    fn neg_and_pad() {
        let neg = Expression::prim(PrimOp::Neg, vec![Expression::reference("a")], vec![]);
        let v = eval(&neg, &[("a", 3, 4, false)]);
        assert_eq!(v.as_i128(), -3);
        let pad = Expression::prim(PrimOp::Pad, vec![Expression::reference("s")], vec![8]);
        let v = eval(&pad, &[("s", 0xF, 4, true)]);
        // -1 sign-extended to 8 bits.
        assert_eq!(v.bits, 0xFF);
    }
}
