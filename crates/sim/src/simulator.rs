//! Cycle-accurate netlist simulation.
//!
//! [`Simulator`] interprets a lowered [`Netlist`]: combinational definitions are
//! evaluated in topological order, registers update on [`Simulator::step`]. The
//! ReChisel workflow uses it as the "Simulator" external tool (step ❸ of Fig. 2): the
//! generated design (DUT) and the benchmark's reference design are simulated side by
//! side and their outputs compared.

use std::collections::BTreeMap;

use rechisel_firrtl::ir::Direction;
use rechisel_firrtl::lower::Netlist;

use crate::eval::{eval_expr_with_mems, mask, EvalError, MemState};

/// Errors produced by simulation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// A signal name passed to poke/peek does not exist or has the wrong direction.
    NoSuchPort(String),
    /// A poked literal does not fit the port: the value has bits above the port width.
    ValueTooWide {
        /// The input port being driven.
        port: String,
        /// The port's width in bits.
        width: u32,
        /// The rejected value.
        value: u128,
    },
    /// A memory name passed to poke_mem/peek_mem does not exist.
    NoSuchMem(String),
    /// A memory address outside `0..depth` was passed to poke_mem/peek_mem.
    MemAddrOutOfRange {
        /// The memory being accessed.
        mem: String,
        /// The memory's depth in words.
        depth: usize,
        /// The rejected address.
        addr: u128,
    },
    /// A poked memory word does not fit the word width (rejected rather than masked).
    MemValueTooWide {
        /// The memory being written.
        mem: String,
        /// The word width in bits.
        width: u32,
        /// The rejected value.
        value: u128,
    },
    /// A signal fed by a sequential (registered) memory read was peeked before the
    /// first edge of the read port's clock domain: the implicit read register has
    /// never captured a word.
    SyncReadBeforeClock {
        /// The peeked signal.
        signal: String,
    },
    /// A clock domain passed to `step_clock` does not exist in the design.
    NoSuchClock(String),
    /// Expression evaluation failed (lowering bug or corrupted netlist).
    Eval(EvalError),
    /// The native engine's AOT generate→build→load pipeline failed for an
    /// environmental reason (I/O, `cargo build`, `dlopen`). Unsupported tape shapes
    /// do **not** produce this — they fall back to the compiled engine (see
    /// `native_or_fallback`).
    NativeBuild(String),
    /// A netlist handed to [`Tape::patch`](crate::Tape::patch) does not structurally
    /// match the tape it would patch (different defs, registers or memories). The
    /// caller should fall back to a full [`Tape::compile`](crate::Tape::compile).
    TapeMismatch(String),
}

impl std::fmt::Display for SimError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SimError::NoSuchPort(name) => write!(f, "no such port: {name}"),
            SimError::ValueTooWide { port, width, value } => {
                write!(f, "value {value} does not fit input port {port} ({width} bits)")
            }
            SimError::NoSuchMem(name) => write!(f, "no such memory: {name}"),
            SimError::MemAddrOutOfRange { mem, depth, addr } => {
                write!(f, "address {addr} is out of range for memory {mem} ({depth} words)")
            }
            SimError::MemValueTooWide { mem, width, value } => {
                write!(f, "value {value} does not fit a word of memory {mem} ({width} bits)")
            }
            SimError::SyncReadBeforeClock { signal } => {
                write!(
                    f,
                    "signal {signal} depends on a sequential memory read; step the clock at \
                     least once before peeking it"
                )
            }
            SimError::NoSuchClock(name) => write!(f, "no such clock domain: {name}"),
            SimError::Eval(e) => write!(f, "evaluation error: {e}"),
            SimError::NativeBuild(e) => write!(f, "native engine build failed: {e}"),
            SimError::TapeMismatch(why) => {
                write!(f, "netlist does not match the tape being patched: {why}")
            }
        }
    }
}

impl std::error::Error for SimError {}

impl From<EvalError> for SimError {
    fn from(e: EvalError) -> Self {
        SimError::Eval(e)
    }
}

/// A cycle-accurate interpreter for a lowered netlist.
///
/// # Example
///
/// ```
/// use rechisel_hcl::prelude::*;
/// use rechisel_sim::Simulator;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut m = ModuleBuilder::new("AddOne");
/// let a = m.input("a", Type::uint(8));
/// let out = m.output("out", Type::uint(8));
/// m.connect(&out, &a.add(&Signal::lit_w(1, 8)).bits(7, 0));
/// let netlist = rechisel_firrtl::lower_circuit(&m.into_circuit())?;
///
/// let mut sim = Simulator::new(netlist);
/// sim.poke("a", 41)?;
/// sim.eval()?;
/// assert_eq!(sim.peek("out")?, 42);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Simulator {
    netlist: Netlist,
    /// Current value of every signal (ports, combinational defs, registers).
    values: BTreeMap<String, u128>,
    /// Current contents of every memory.
    mems: BTreeMap<String, MemState>,
    /// For every signal depending on a sequential memory read, the implicit read
    /// registers it depends on; peeking is rejected while any of them is uncaptured.
    sync_sources: BTreeMap<String, std::collections::BTreeSet<String>>,
    /// Implicit read registers whose clock domain has never edged (they have never
    /// captured a word).
    uncaptured: std::collections::BTreeSet<String>,
    /// Clock domains in first-appearance order (cached from the netlist).
    domains: Vec<String>,
    cycles: u64,
}

impl Simulator {
    /// Creates a simulator with all inputs and registers at zero and every memory
    /// holding its declared initial image (zero where uninitialized).
    pub fn new(netlist: Netlist) -> Self {
        let mut values = BTreeMap::new();
        for port in &netlist.ports {
            values.insert(port.name.clone(), 0);
        }
        for reg in &netlist.regs {
            values.insert(reg.name.clone(), 0);
        }
        for def in &netlist.defs {
            values.insert(def.name.clone(), 0);
        }
        let mems = netlist
            .mems
            .iter()
            .map(|m| (m.name.clone(), MemState::with_init(m.info, m.depth, &m.init)))
            .collect();
        let sync_sources = netlist.sync_read_sources();
        let uncaptured = netlist.mems.iter().flat_map(|m| m.sync_reads.iter().cloned()).collect();
        let domains = netlist.clock_domains();
        Self { netlist, values, mems, sync_sources, uncaptured, domains, cycles: 0 }
    }

    /// The design's clock domains, in first-appearance order.
    pub fn clock_domains(&self) -> &[String] {
        &self.domains
    }

    /// The underlying netlist.
    pub fn netlist(&self) -> &Netlist {
        &self.netlist
    }

    /// Number of clock cycles simulated so far.
    pub fn cycles(&self) -> u64 {
        self.cycles
    }

    /// Drives an input port.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::NoSuchPort`] if `name` is not an input port, and
    /// [`SimError::ValueTooWide`] if `value` is wider than the port (out-of-range
    /// literals are rejected rather than silently masked, so a testbench driving
    /// `256` into an 8-bit port is a caller bug, not a quiet truncation to 0).
    pub fn poke(&mut self, name: &str, value: u128) -> Result<(), SimError> {
        let port = self
            .netlist
            .ports
            .iter()
            .find(|p| p.name == name && p.direction == Direction::Input)
            .ok_or_else(|| SimError::NoSuchPort(name.to_string()))?;
        let width = port.info.width;
        if value != mask(value, width) {
            return Err(SimError::ValueTooWide { port: name.to_string(), width, value });
        }
        self.values.insert(name.to_string(), value);
        Ok(())
    }

    /// Reads the current value of any signal (port, wire or register).
    ///
    /// # Errors
    ///
    /// Returns [`SimError::NoSuchPort`] if the signal does not exist, and
    /// [`SimError::SyncReadBeforeClock`] when the signal depends on a sequential
    /// memory read whose clock domain has not edged yet (the implicit read register
    /// has never captured a word).
    pub fn peek(&self, name: &str) -> Result<u128, SimError> {
        if !self.uncaptured.is_empty() {
            if let Some(sources) = self.sync_sources.get(name) {
                if sources.iter().any(|s| self.uncaptured.contains(s)) {
                    return Err(SimError::SyncReadBeforeClock { signal: name.to_string() });
                }
            }
        }
        self.values.get(name).copied().ok_or_else(|| SimError::NoSuchPort(name.to_string()))
    }

    /// Reads the current contents of one memory word.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::NoSuchMem`] for unknown memories and
    /// [`SimError::MemAddrOutOfRange`] for addresses outside `0..depth`.
    pub fn peek_mem(&self, mem: &str, addr: u128) -> Result<u128, SimError> {
        let state = self.mems.get(mem).ok_or_else(|| SimError::NoSuchMem(mem.to_string()))?;
        if addr >= state.words.len() as u128 {
            return Err(SimError::MemAddrOutOfRange {
                mem: mem.to_string(),
                depth: state.words.len(),
                addr,
            });
        }
        Ok(state.words[addr as usize])
    }

    /// Overwrites one memory word, validating the address and value first.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::NoSuchMem`] for unknown memories,
    /// [`SimError::MemAddrOutOfRange`] for addresses outside `0..depth`, and
    /// [`SimError::MemValueTooWide`] when `value` has bits above the word width
    /// (out-of-range data is rejected rather than silently masked, mirroring
    /// [`Simulator::poke`]).
    pub fn poke_mem(&mut self, mem: &str, addr: u128, value: u128) -> Result<(), SimError> {
        let state = self.mems.get_mut(mem).ok_or_else(|| SimError::NoSuchMem(mem.to_string()))?;
        if addr >= state.words.len() as u128 {
            return Err(SimError::MemAddrOutOfRange {
                mem: mem.to_string(),
                depth: state.words.len(),
                addr,
            });
        }
        if value != mask(value, state.info.width) {
            return Err(SimError::MemValueTooWide {
                mem: mem.to_string(),
                width: state.info.width,
                value,
            });
        }
        state.words[addr as usize] = value;
        Ok(())
    }

    /// Re-evaluates all combinational logic with the current inputs and register state.
    pub fn eval(&mut self) -> Result<(), SimError> {
        // Definitions are already in topological order.
        for def in &self.netlist.defs {
            let value =
                eval_expr_with_mems(&def.expr, &self.values, &self.netlist.signals, &self.mems)?;
            self.values.insert(def.name.clone(), mask(value.bits, def.info.width));
        }
        Ok(())
    }

    /// Advances one clock cycle on **every** domain: evaluates combinational logic,
    /// computes every register's next value (applying synchronous reset) and every
    /// enabled memory write, commits them simultaneously, and re-evaluates.
    ///
    /// Memory writes observe nonblocking-assignment semantics: all next-states and
    /// write ports are staged against the pre-edge state before anything commits.
    pub fn step(&mut self) -> Result<(), SimError> {
        self.step_filtered(None)
    }

    /// Edges one clock domain only: registers and memory write ports in other
    /// domains keep their pre-edge state (see `SimEngine::step_clock`).
    ///
    /// # Errors
    ///
    /// Returns [`SimError::NoSuchClock`] when `domain` is not a clock domain of the
    /// design; otherwise the same conditions as [`Simulator::step`].
    pub fn step_clock(&mut self, domain: &str) -> Result<(), SimError> {
        if !self.domains.iter().any(|d| d == domain) {
            return Err(SimError::NoSuchClock(domain.to_string()));
        }
        self.step_filtered(Some(&[domain]))
    }

    /// Edges several clock domains **simultaneously**: one edge event, one cycle,
    /// with every listed domain's registers and write ports staged against the same
    /// pre-edge state (see `SimEngine::step_clocks`). This is *not* equivalent to
    /// stepping the domains back to back — cross-domain register exchanges observe
    /// each other's pre-edge values only on a simultaneous edge.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::NoSuchClock`] when `domains` is empty or names a domain
    /// that is not a clock domain of the design; otherwise the same conditions as
    /// [`Simulator::step`].
    pub fn step_clocks(&mut self, domains: &[&str]) -> Result<(), SimError> {
        if domains.is_empty() {
            return Err(SimError::NoSuchClock("(empty domain set)".to_string()));
        }
        for domain in domains {
            if !self.domains.iter().any(|d| d == domain) {
                return Err(SimError::NoSuchClock(domain.to_string()));
            }
        }
        self.step_filtered(Some(domains))
    }

    /// Shared stage-then-commit edge: with `domains == None` every register and write
    /// port commits (the lockstep all-domain edge `step` has always performed); with
    /// `Some(set)` only state clocked by a listed domain commits.
    fn step_filtered(&mut self, domains: Option<&[&str]>) -> Result<(), SimError> {
        self.eval()?;
        let mut next_values: Vec<(String, u128)> = Vec::with_capacity(self.netlist.regs.len());
        for reg in self
            .netlist
            .regs
            .iter()
            .filter(|r| domains.is_none_or(|ds| ds.iter().any(|d| *d == r.clock)))
        {
            let next =
                eval_expr_with_mems(&reg.next, &self.values, &self.netlist.signals, &self.mems)?;
            let value = match &reg.reset {
                Some((reset_expr, init_expr)) => {
                    let r = eval_expr_with_mems(
                        reset_expr,
                        &self.values,
                        &self.netlist.signals,
                        &self.mems,
                    )?;
                    if r.bits & 1 != 0 {
                        eval_expr_with_mems(
                            init_expr,
                            &self.values,
                            &self.netlist.signals,
                            &self.mems,
                        )?
                        .bits
                    } else {
                        next.bits
                    }
                }
                None => next.bits,
            };
            next_values.push((reg.name.clone(), mask(value, reg.info.width)));
        }
        // Stage memory writes against the same pre-edge state (simultaneous update):
        // (memory index, word index, fully merged word), ports in declaration order.
        // A lane-masked port merges its data into the PRE-EDGE word; the commit loop
        // then stores whole words in port order, so a same-cycle same-address
        // collision resolves to the textually last port — exactly the semantics of
        // the emitted Verilog, where every port is a nonblocking assignment (reading
        // pre-edge state) and the last scheduled assignment wins.
        let mut mem_commits: Vec<(usize, usize, u128)> = Vec::new();
        for (mem_index, mem) in self.netlist.mems.iter().enumerate() {
            let word_mask = mask(u128::MAX, mem.info.width);
            for port in mem
                .writes
                .iter()
                .filter(|w| domains.is_none_or(|ds| ds.iter().any(|d| *d == w.clock)))
            {
                let en = eval_expr_with_mems(
                    &port.enable,
                    &self.values,
                    &self.netlist.signals,
                    &self.mems,
                )?;
                if en.bits & 1 == 0 {
                    continue;
                }
                let addr = eval_expr_with_mems(
                    &port.addr,
                    &self.values,
                    &self.netlist.signals,
                    &self.mems,
                )?
                .as_u128();
                let value = eval_expr_with_mems(
                    &port.value,
                    &self.values,
                    &self.netlist.signals,
                    &self.mems,
                )?;
                if addr >= mem.depth as u128 {
                    continue;
                }
                let value = mask(value.bits, mem.info.width);
                let merged = match &port.mask {
                    None => value,
                    Some(m) => {
                        let lanes = eval_expr_with_mems(
                            m,
                            &self.values,
                            &self.netlist.signals,
                            &self.mems,
                        )?
                        .bits
                            & word_mask;
                        let old = self.mems[&mem.name].words[addr as usize];
                        (old & !lanes) | (value & lanes)
                    }
                };
                mem_commits.push((mem_index, addr as usize, merged));
            }
        }
        for (name, value) in next_values {
            self.values.insert(name, value);
        }
        for (mem_index, addr, word) in mem_commits {
            let name = &self.netlist.mems[mem_index].name;
            if let Some(state) = self.mems.get_mut(name) {
                state.words[addr] = word;
            }
        }
        // An implicit read register leaves the uncaptured set on the first edge of
        // its own clock domain — edges of other domains don't capture anything.
        if !self.uncaptured.is_empty() {
            self.uncaptured.retain(|name| {
                !self.netlist.regs.iter().any(|r| {
                    r.name == *name && domains.is_none_or(|ds| ds.iter().any(|d| *d == r.clock))
                })
            });
        }
        self.cycles += 1;
        self.eval()
    }

    /// Advances `n` clock cycles.
    pub fn step_n(&mut self, n: u32) -> Result<(), SimError> {
        for _ in 0..n {
            self.step()?;
        }
        Ok(())
    }

    /// Asserts the `reset` input (when present) for `cycles` cycles, then deasserts it.
    ///
    /// Each pulse cycle is a full [`Simulator::step`], so reset edges **every** clock
    /// domain; memory init images are not restored (time-zero preload only).
    pub fn reset(&mut self, cycles: u32) -> Result<(), SimError> {
        let has_reset =
            self.netlist.ports.iter().any(|p| p.name == "reset" && p.direction == Direction::Input);
        if has_reset {
            self.poke("reset", 1)?;
            self.step_n(cycles)?;
            self.poke("reset", 0)?;
            self.eval()?;
        }
        Ok(())
    }

    /// Reads all output ports, in port order (raw values — no
    /// [`SimError::SyncReadBeforeClock`] guard; see `SimEngine::outputs`).
    pub fn outputs(&self) -> Vec<(String, u128)> {
        self.netlist
            .ports
            .iter()
            .filter(|p| p.direction == Direction::Output)
            .map(|p| (p.name.clone(), self.values.get(&p.name).copied().unwrap_or(0)))
            .collect()
    }

    /// Names of the data input ports (excluding clock and reset).
    pub fn input_names(&self) -> Vec<String> {
        self.netlist.data_inputs().filter(|p| p.name != "reset").map(|p| p.name.clone()).collect()
    }
}

impl crate::engine::SimEngine for Simulator {
    fn poke(&mut self, name: &str, value: u128) -> Result<(), SimError> {
        Simulator::poke(self, name, value)
    }

    fn peek(&self, name: &str) -> Result<u128, SimError> {
        Simulator::peek(self, name)
    }

    fn eval(&mut self) -> Result<(), SimError> {
        Simulator::eval(self)
    }

    fn step(&mut self) -> Result<(), SimError> {
        Simulator::step(self)
    }

    fn step_clock(&mut self, domain: &str) -> Result<(), SimError> {
        Simulator::step_clock(self, domain)
    }

    fn step_clocks(&mut self, domains: &[&str]) -> Result<(), SimError> {
        Simulator::step_clocks(self, domains)
    }

    fn clock_domains(&self) -> Vec<String> {
        self.domains.clone()
    }

    fn cycles(&self) -> u64 {
        Simulator::cycles(self)
    }

    fn outputs(&self) -> Vec<(String, u128)> {
        Simulator::outputs(self)
    }

    fn has_reset(&self) -> bool {
        self.netlist.ports.iter().any(|p| p.name == "reset" && p.direction == Direction::Input)
    }

    fn peek_mem(&self, mem: &str, addr: u128) -> Result<u128, SimError> {
        Simulator::peek_mem(self, mem, addr)
    }

    fn poke_mem(&mut self, mem: &str, addr: u128, value: u128) -> Result<(), SimError> {
        Simulator::poke_mem(self, mem, addr, value)
    }

    fn mem_names(&self) -> Vec<String> {
        self.netlist.mems.iter().map(|m| m.name.clone()).collect()
    }

    fn mem_depth(&self, mem: &str) -> Option<usize> {
        self.netlist.mems.iter().find(|m| m.name == mem).map(|m| m.depth)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rechisel_firrtl::lower_circuit;
    use rechisel_hcl::prelude::*;

    fn counter_netlist() -> Netlist {
        let mut m = ModuleBuilder::new("Counter");
        let en = m.input("en", Type::bool());
        let out = m.output("out", Type::uint(8));
        let count = m.reg_init("count", Type::uint(8), &Signal::lit_w(0, 8));
        m.when(&en, |m| {
            let next = count.add(&Signal::lit_w(1, 8)).bits(7, 0);
            m.connect(&count, &next);
        });
        m.connect(&out, &count);
        lower_circuit(&m.into_circuit()).unwrap()
    }

    #[test]
    fn combinational_adder() {
        let mut m = ModuleBuilder::new("Adder");
        let a = m.input("a", Type::uint(8));
        let b = m.input("b", Type::uint(8));
        let out = m.output("out", Type::uint(9));
        m.connect(&out, &a.add(&b));
        let netlist = lower_circuit(&m.into_circuit()).unwrap();
        let mut sim = Simulator::new(netlist);
        sim.poke("a", 100).unwrap();
        sim.poke("b", 200).unwrap();
        sim.eval().unwrap();
        assert_eq!(sim.peek("out").unwrap(), 300);
    }

    #[test]
    fn counter_counts_when_enabled() {
        let mut sim = Simulator::new(counter_netlist());
        sim.reset(2).unwrap();
        assert_eq!(sim.peek("out").unwrap(), 0);
        sim.poke("en", 1).unwrap();
        sim.step_n(5).unwrap();
        assert_eq!(sim.peek("out").unwrap(), 5);
        sim.poke("en", 0).unwrap();
        sim.step_n(3).unwrap();
        assert_eq!(sim.peek("out").unwrap(), 5);
        assert_eq!(sim.cycles(), 10);
    }

    #[test]
    fn reset_reinitialises_registers() {
        let mut sim = Simulator::new(counter_netlist());
        sim.reset(1).unwrap();
        sim.poke("en", 1).unwrap();
        sim.step_n(4).unwrap();
        assert_eq!(sim.peek("out").unwrap(), 4);
        sim.reset(1).unwrap();
        assert_eq!(sim.peek("out").unwrap(), 0);
    }

    #[test]
    fn poke_unknown_port_fails() {
        let mut sim = Simulator::new(counter_netlist());
        assert!(sim.poke("ghost", 1).is_err());
        // Outputs cannot be poked.
        assert!(sim.poke("out", 1).is_err());
        assert!(sim.peek("ghost").is_err());
    }

    #[test]
    fn poke_rejects_values_wider_than_the_port() {
        let mut sim = Simulator::new(counter_netlist());
        // In-range values (including the maximum) are accepted.
        sim.poke("en", 1).unwrap();
        assert_eq!(sim.peek("en").unwrap(), 1);
        sim.poke("en", 0).unwrap();
        // Out-of-range literals are an error, not a silent mask.
        let err = sim.poke("en", 0xFF).unwrap_err();
        match &err {
            SimError::ValueTooWide { port, width, value } => {
                assert_eq!(port, "en");
                assert_eq!(*width, 1);
                assert_eq!(*value, 0xFF);
            }
            other => panic!("expected ValueTooWide, got {other:?}"),
        }
        // The rejected poke must not have clobbered the port value.
        assert_eq!(sim.peek("en").unwrap(), 0);
    }

    #[test]
    fn sim_error_display_formats() {
        assert_eq!(SimError::NoSuchPort("x".into()).to_string(), "no such port: x");
        assert_eq!(
            SimError::ValueTooWide { port: "en".into(), width: 1, value: 255 }.to_string(),
            "value 255 does not fit input port en (1 bits)"
        );
        assert_eq!(
            SimError::Eval(EvalError::UnknownSignal("s".into())).to_string(),
            "evaluation error: unknown signal s"
        );
        assert_eq!(
            SimError::from(EvalError::UnsupportedExpression("w.f".into())).to_string(),
            "evaluation error: unsupported expression during simulation: w.f"
        );
        // SimError is a std error with no source chaining.
        let err: Box<dyn std::error::Error> = Box::new(SimError::NoSuchPort("x".into()));
        assert!(err.source().is_none());
    }

    #[test]
    fn outputs_lists_output_ports() {
        let sim = Simulator::new(counter_netlist());
        let outs = sim.outputs();
        assert_eq!(outs.len(), 1);
        assert_eq!(outs[0].0, "out");
        assert_eq!(sim.input_names(), vec!["en".to_string()]);
    }

    #[test]
    fn register_without_reset_holds_value() {
        let mut m = ModuleBuilder::new("Hold");
        let d = m.input("d", Type::uint(4));
        let we = m.input("we", Type::bool());
        let q = m.output("q", Type::uint(4));
        let r = m.reg("r", Type::uint(4));
        m.when(&we, |m| m.connect(&r, &d));
        m.connect(&q, &r);
        let netlist = lower_circuit(&m.into_circuit()).unwrap();
        let mut sim = Simulator::new(netlist);
        sim.poke("d", 9).unwrap();
        sim.poke("we", 1).unwrap();
        sim.step().unwrap();
        assert_eq!(sim.peek("q").unwrap(), 9);
        sim.poke("we", 0).unwrap();
        sim.poke("d", 3).unwrap();
        sim.step_n(4).unwrap();
        assert_eq!(sim.peek("q").unwrap(), 9);
    }

    fn ram_netlist() -> Netlist {
        let mut m = ModuleBuilder::new("Ram");
        let we = m.input("we", Type::bool());
        let waddr = m.input("waddr", Type::uint(3));
        let wdata = m.input("wdata", Type::uint(8));
        let raddr = m.input("raddr", Type::uint(3));
        let rdata = m.output("rdata", Type::uint(8));
        let mem = m.mem("store", Type::uint(8), 8);
        m.when(&we, |m| {
            m.mem_write(&mem, &waddr, &wdata);
        });
        m.connect(&rdata, &mem.read(&raddr));
        lower_circuit(&m.into_circuit()).unwrap()
    }

    #[test]
    fn memory_write_then_read() {
        let mut sim = Simulator::new(ram_netlist());
        sim.poke("we", 1).unwrap();
        sim.poke("waddr", 3).unwrap();
        sim.poke("wdata", 0xAB).unwrap();
        sim.step().unwrap();
        sim.poke("we", 0).unwrap();
        sim.poke("raddr", 3).unwrap();
        sim.eval().unwrap();
        assert_eq!(sim.peek("rdata").unwrap(), 0xAB);
        // Unwritten words read as zero.
        sim.poke("raddr", 4).unwrap();
        sim.eval().unwrap();
        assert_eq!(sim.peek("rdata").unwrap(), 0);
        assert_eq!(sim.peek_mem("store", 3).unwrap(), 0xAB);
    }

    #[test]
    fn memory_read_under_write_returns_old_data() {
        let mut sim = Simulator::new(ram_netlist());
        sim.poke_mem("store", 5, 0x11).unwrap();
        sim.poke("we", 1).unwrap();
        sim.poke("waddr", 5).unwrap();
        sim.poke("wdata", 0x22).unwrap();
        sim.poke("raddr", 5).unwrap();
        sim.eval().unwrap();
        // Before the edge the old word is visible.
        assert_eq!(sim.peek("rdata").unwrap(), 0x11);
        sim.step().unwrap();
        // After the edge the write has committed.
        assert_eq!(sim.peek("rdata").unwrap(), 0x22);
    }

    #[test]
    fn memory_write_disabled_leaves_contents() {
        let mut sim = Simulator::new(ram_netlist());
        sim.poke_mem("store", 2, 0x7F).unwrap();
        sim.poke("we", 0).unwrap();
        sim.poke("waddr", 2).unwrap();
        sim.poke("wdata", 0x01).unwrap();
        sim.step_n(3).unwrap();
        assert_eq!(sim.peek_mem("store", 2).unwrap(), 0x7F);
    }

    #[test]
    fn poke_mem_validates_address_and_value() {
        let mut sim = Simulator::new(ram_netlist());
        assert!(matches!(
            sim.poke_mem("ghost", 0, 0),
            Err(SimError::NoSuchMem(name)) if name == "ghost"
        ));
        assert!(matches!(
            sim.poke_mem("store", 8, 0),
            Err(SimError::MemAddrOutOfRange { depth: 8, addr: 8, .. })
        ));
        assert!(matches!(
            sim.poke_mem("store", 0, 0x100),
            Err(SimError::MemValueTooWide { width: 8, value: 0x100, .. })
        ));
        // The rejected pokes must not have touched the store.
        assert_eq!(sim.peek_mem("store", 0).unwrap(), 0);
        assert!(matches!(
            sim.peek_mem("store", 9),
            Err(SimError::MemAddrOutOfRange { depth: 8, addr: 9, .. })
        ));
    }

    #[test]
    fn mem_error_display_formats() {
        assert_eq!(SimError::NoSuchMem("m".into()).to_string(), "no such memory: m");
        assert_eq!(
            SimError::MemAddrOutOfRange { mem: "m".into(), depth: 8, addr: 9 }.to_string(),
            "address 9 is out of range for memory m (8 words)"
        );
        assert_eq!(
            SimError::MemValueTooWide { mem: "m".into(), width: 8, value: 256 }.to_string(),
            "value 256 does not fit a word of memory m (8 bits)"
        );
        assert_eq!(
            SimError::SyncReadBeforeClock { signal: "rdata".into() }.to_string(),
            "signal rdata depends on a sequential memory read; step the clock at least once \
             before peeking it"
        );
    }

    fn masked_ram_netlist() -> Netlist {
        let mut m = ModuleBuilder::new("MaskedRam");
        let addr = m.input("addr", Type::uint(2));
        let wdata = m.input("wdata", Type::uint(8));
        let wmask = m.input("wmask", Type::uint(8));
        let we = m.input("we", Type::bool());
        let rdata = m.output("rdata", Type::uint(8));
        let mem = m.mem("store", Type::uint(8), 4);
        m.when(&we, |m| m.mem_write_masked(&mem, &addr, &wdata, &wmask));
        m.connect(&rdata, &mem.read(&addr));
        lower_circuit(&m.into_circuit()).unwrap()
    }

    #[test]
    fn masked_write_touches_only_the_set_lanes() {
        let mut sim = Simulator::new(masked_ram_netlist());
        sim.poke_mem("store", 2, 0b1010_0101).unwrap();
        sim.poke("we", 1).unwrap();
        sim.poke("addr", 2).unwrap();
        sim.poke("wdata", 0xFF).unwrap();
        sim.poke("wmask", 0x0F).unwrap();
        sim.step().unwrap();
        // Low nibble takes the data, high nibble keeps the old word.
        assert_eq!(sim.peek_mem("store", 2).unwrap(), 0b1010_1111);
        // An all-zero mask is an enabled write that changes nothing.
        sim.poke("wmask", 0x00).unwrap();
        sim.poke("wdata", 0x00).unwrap();
        sim.step().unwrap();
        assert_eq!(sim.peek_mem("store", 2).unwrap(), 0b1010_1111);
    }

    fn sync_ram_netlist() -> Netlist {
        let mut m = ModuleBuilder::new("SyncRam");
        let we = m.input("we", Type::bool());
        let addr = m.input("addr", Type::uint(2));
        let wdata = m.input("wdata", Type::uint(8));
        let rdata = m.output("rdata", Type::uint(8));
        let mem = m.mem("store", Type::uint(8), 4);
        m.when(&we, |m| m.mem_write(&mem, &addr, &wdata));
        m.connect(&rdata, &mem.read_sync(&addr));
        lower_circuit(&m.into_circuit()).unwrap()
    }

    #[test]
    fn sync_read_lags_one_cycle_and_returns_old_data_under_write() {
        let mut sim = Simulator::new(sync_ram_netlist());
        // Peeking the registered read (or anything fed by it) before the first edge
        // is a typed error, not a silent zero.
        assert_eq!(
            sim.peek("rdata"),
            Err(SimError::SyncReadBeforeClock { signal: "rdata".into() })
        );
        sim.poke_mem("store", 1, 0x55).unwrap();
        sim.poke("addr", 1).unwrap();
        sim.poke("we", 1).unwrap();
        sim.poke("wdata", 0xAA).unwrap();
        sim.step().unwrap();
        // The edge captured the PRE-edge word (read-under-write = old data) even
        // though the write to the same address committed on the same edge.
        assert_eq!(sim.peek("rdata").unwrap(), 0x55);
        assert_eq!(sim.peek_mem("store", 1).unwrap(), 0xAA);
        sim.poke("we", 0).unwrap();
        sim.step().unwrap();
        // One cycle later the new word is visible through the registered port.
        assert_eq!(sim.peek("rdata").unwrap(), 0xAA);
    }

    #[test]
    fn initialized_memory_reads_back_image_and_survives_reset() {
        let mut m = ModuleBuilder::new("Rom");
        let addr = m.input("addr", Type::uint(2));
        let dout = m.output("dout", Type::uint(8));
        let mem = m.mem("rom", Type::uint(8), 4);
        m.mem_init(&mem, &[0x10, 0x20, 0x30]);
        m.connect(&dout, &mem.read(&addr));
        let netlist = lower_circuit(&m.into_circuit()).unwrap();
        let mut sim = Simulator::new(netlist);
        for (addr, expected) in [(0u128, 0x10u128), (1, 0x20), (2, 0x30), (3, 0)] {
            sim.poke("addr", addr).unwrap();
            sim.eval().unwrap();
            assert_eq!(sim.peek("dout").unwrap(), expected, "addr {addr}");
        }
        // Reset does not restore the image: it is a time-zero preload only.
        sim.poke_mem("rom", 0, 0x77).unwrap();
        sim.reset(2).unwrap();
        assert_eq!(sim.peek_mem("rom", 0).unwrap(), 0x77);
    }

    #[test]
    fn mem_names_and_depth_via_engine_trait() {
        use crate::engine::SimEngine;
        let sim = Simulator::new(ram_netlist());
        assert_eq!(SimEngine::mem_names(&sim), vec!["store".to_string()]);
        assert_eq!(SimEngine::mem_depth(&sim, "store"), Some(8));
        assert_eq!(SimEngine::mem_depth(&sim, "ghost"), None);
    }
}
