//! Cycle-accurate netlist simulation.
//!
//! [`Simulator`] interprets a lowered [`Netlist`]: combinational definitions are
//! evaluated in topological order, registers update on [`Simulator::step`]. The
//! ReChisel workflow uses it as the "Simulator" external tool (step ❸ of Fig. 2): the
//! generated design (DUT) and the benchmark's reference design are simulated side by
//! side and their outputs compared.

use std::collections::BTreeMap;

use rechisel_firrtl::ir::Direction;
use rechisel_firrtl::lower::Netlist;

use crate::eval::{eval_expr, mask, EvalError};

/// Errors produced by simulation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// A signal name passed to poke/peek does not exist or has the wrong direction.
    NoSuchPort(String),
    /// A poked literal does not fit the port: the value has bits above the port width.
    ValueTooWide {
        /// The input port being driven.
        port: String,
        /// The port's width in bits.
        width: u32,
        /// The rejected value.
        value: u128,
    },
    /// Expression evaluation failed (lowering bug or corrupted netlist).
    Eval(EvalError),
}

impl std::fmt::Display for SimError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SimError::NoSuchPort(name) => write!(f, "no such port: {name}"),
            SimError::ValueTooWide { port, width, value } => {
                write!(f, "value {value} does not fit input port {port} ({width} bits)")
            }
            SimError::Eval(e) => write!(f, "evaluation error: {e}"),
        }
    }
}

impl std::error::Error for SimError {}

impl From<EvalError> for SimError {
    fn from(e: EvalError) -> Self {
        SimError::Eval(e)
    }
}

/// A cycle-accurate interpreter for a lowered netlist.
///
/// # Example
///
/// ```
/// use rechisel_hcl::prelude::*;
/// use rechisel_sim::Simulator;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut m = ModuleBuilder::new("AddOne");
/// let a = m.input("a", Type::uint(8));
/// let out = m.output("out", Type::uint(8));
/// m.connect(&out, &a.add(&Signal::lit_w(1, 8)).bits(7, 0));
/// let netlist = rechisel_firrtl::lower_circuit(&m.into_circuit())?;
///
/// let mut sim = Simulator::new(netlist);
/// sim.poke("a", 41)?;
/// sim.eval()?;
/// assert_eq!(sim.peek("out")?, 42);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Simulator {
    netlist: Netlist,
    /// Current value of every signal (ports, combinational defs, registers).
    values: BTreeMap<String, u128>,
    cycles: u64,
}

impl Simulator {
    /// Creates a simulator with all inputs and registers initialised to zero.
    pub fn new(netlist: Netlist) -> Self {
        let mut values = BTreeMap::new();
        for port in &netlist.ports {
            values.insert(port.name.clone(), 0);
        }
        for reg in &netlist.regs {
            values.insert(reg.name.clone(), 0);
        }
        for def in &netlist.defs {
            values.insert(def.name.clone(), 0);
        }
        Self { netlist, values, cycles: 0 }
    }

    /// The underlying netlist.
    pub fn netlist(&self) -> &Netlist {
        &self.netlist
    }

    /// Number of clock cycles simulated so far.
    pub fn cycles(&self) -> u64 {
        self.cycles
    }

    /// Drives an input port.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::NoSuchPort`] if `name` is not an input port, and
    /// [`SimError::ValueTooWide`] if `value` is wider than the port (out-of-range
    /// literals are rejected rather than silently masked, so a testbench driving
    /// `256` into an 8-bit port is a caller bug, not a quiet truncation to 0).
    pub fn poke(&mut self, name: &str, value: u128) -> Result<(), SimError> {
        let port = self
            .netlist
            .ports
            .iter()
            .find(|p| p.name == name && p.direction == Direction::Input)
            .ok_or_else(|| SimError::NoSuchPort(name.to_string()))?;
        let width = port.info.width;
        if value != mask(value, width) {
            return Err(SimError::ValueTooWide { port: name.to_string(), width, value });
        }
        self.values.insert(name.to_string(), value);
        Ok(())
    }

    /// Reads the current value of any signal (port, wire or register).
    ///
    /// # Errors
    ///
    /// Returns [`SimError::NoSuchPort`] if the signal does not exist.
    pub fn peek(&self, name: &str) -> Result<u128, SimError> {
        self.values.get(name).copied().ok_or_else(|| SimError::NoSuchPort(name.to_string()))
    }

    /// Re-evaluates all combinational logic with the current inputs and register state.
    pub fn eval(&mut self) -> Result<(), SimError> {
        // Definitions are already in topological order.
        for def in &self.netlist.defs {
            let value = eval_expr(&def.expr, &self.values, &self.netlist.signals)?;
            self.values.insert(def.name.clone(), mask(value.bits, def.info.width));
        }
        Ok(())
    }

    /// Advances one clock cycle: evaluates combinational logic, computes every
    /// register's next value (applying synchronous reset), commits them simultaneously,
    /// and re-evaluates.
    pub fn step(&mut self) -> Result<(), SimError> {
        self.eval()?;
        let mut next_values: Vec<(String, u128)> = Vec::with_capacity(self.netlist.regs.len());
        for reg in &self.netlist.regs {
            let next = eval_expr(&reg.next, &self.values, &self.netlist.signals)?;
            let value = match &reg.reset {
                Some((reset_expr, init_expr)) => {
                    let r = eval_expr(reset_expr, &self.values, &self.netlist.signals)?;
                    if r.bits & 1 != 0 {
                        eval_expr(init_expr, &self.values, &self.netlist.signals)?.bits
                    } else {
                        next.bits
                    }
                }
                None => next.bits,
            };
            next_values.push((reg.name.clone(), mask(value, reg.info.width)));
        }
        for (name, value) in next_values {
            self.values.insert(name, value);
        }
        self.cycles += 1;
        self.eval()
    }

    /// Advances `n` clock cycles.
    pub fn step_n(&mut self, n: u32) -> Result<(), SimError> {
        for _ in 0..n {
            self.step()?;
        }
        Ok(())
    }

    /// Asserts the `reset` input (when present) for `cycles` cycles, then deasserts it.
    pub fn reset(&mut self, cycles: u32) -> Result<(), SimError> {
        let has_reset =
            self.netlist.ports.iter().any(|p| p.name == "reset" && p.direction == Direction::Input);
        if has_reset {
            self.poke("reset", 1)?;
            self.step_n(cycles)?;
            self.poke("reset", 0)?;
            self.eval()?;
        }
        Ok(())
    }

    /// Reads all output ports, in port order.
    pub fn outputs(&self) -> Vec<(String, u128)> {
        self.netlist
            .ports
            .iter()
            .filter(|p| p.direction == Direction::Output)
            .map(|p| (p.name.clone(), self.values.get(&p.name).copied().unwrap_or(0)))
            .collect()
    }

    /// Names of the data input ports (excluding clock and reset).
    pub fn input_names(&self) -> Vec<String> {
        self.netlist.data_inputs().filter(|p| p.name != "reset").map(|p| p.name.clone()).collect()
    }
}

impl crate::engine::SimEngine for Simulator {
    fn poke(&mut self, name: &str, value: u128) -> Result<(), SimError> {
        Simulator::poke(self, name, value)
    }

    fn peek(&self, name: &str) -> Result<u128, SimError> {
        Simulator::peek(self, name)
    }

    fn eval(&mut self) -> Result<(), SimError> {
        Simulator::eval(self)
    }

    fn step(&mut self) -> Result<(), SimError> {
        Simulator::step(self)
    }

    fn cycles(&self) -> u64 {
        Simulator::cycles(self)
    }

    fn outputs(&self) -> Vec<(String, u128)> {
        Simulator::outputs(self)
    }

    fn has_reset(&self) -> bool {
        self.netlist.ports.iter().any(|p| p.name == "reset" && p.direction == Direction::Input)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rechisel_firrtl::lower_circuit;
    use rechisel_hcl::prelude::*;

    fn counter_netlist() -> Netlist {
        let mut m = ModuleBuilder::new("Counter");
        let en = m.input("en", Type::bool());
        let out = m.output("out", Type::uint(8));
        let count = m.reg_init("count", Type::uint(8), &Signal::lit_w(0, 8));
        m.when(&en, |m| {
            let next = count.add(&Signal::lit_w(1, 8)).bits(7, 0);
            m.connect(&count, &next);
        });
        m.connect(&out, &count);
        lower_circuit(&m.into_circuit()).unwrap()
    }

    #[test]
    fn combinational_adder() {
        let mut m = ModuleBuilder::new("Adder");
        let a = m.input("a", Type::uint(8));
        let b = m.input("b", Type::uint(8));
        let out = m.output("out", Type::uint(9));
        m.connect(&out, &a.add(&b));
        let netlist = lower_circuit(&m.into_circuit()).unwrap();
        let mut sim = Simulator::new(netlist);
        sim.poke("a", 100).unwrap();
        sim.poke("b", 200).unwrap();
        sim.eval().unwrap();
        assert_eq!(sim.peek("out").unwrap(), 300);
    }

    #[test]
    fn counter_counts_when_enabled() {
        let mut sim = Simulator::new(counter_netlist());
        sim.reset(2).unwrap();
        assert_eq!(sim.peek("out").unwrap(), 0);
        sim.poke("en", 1).unwrap();
        sim.step_n(5).unwrap();
        assert_eq!(sim.peek("out").unwrap(), 5);
        sim.poke("en", 0).unwrap();
        sim.step_n(3).unwrap();
        assert_eq!(sim.peek("out").unwrap(), 5);
        assert_eq!(sim.cycles(), 10);
    }

    #[test]
    fn reset_reinitialises_registers() {
        let mut sim = Simulator::new(counter_netlist());
        sim.reset(1).unwrap();
        sim.poke("en", 1).unwrap();
        sim.step_n(4).unwrap();
        assert_eq!(sim.peek("out").unwrap(), 4);
        sim.reset(1).unwrap();
        assert_eq!(sim.peek("out").unwrap(), 0);
    }

    #[test]
    fn poke_unknown_port_fails() {
        let mut sim = Simulator::new(counter_netlist());
        assert!(sim.poke("ghost", 1).is_err());
        // Outputs cannot be poked.
        assert!(sim.poke("out", 1).is_err());
        assert!(sim.peek("ghost").is_err());
    }

    #[test]
    fn poke_rejects_values_wider_than_the_port() {
        let mut sim = Simulator::new(counter_netlist());
        // In-range values (including the maximum) are accepted.
        sim.poke("en", 1).unwrap();
        assert_eq!(sim.peek("en").unwrap(), 1);
        sim.poke("en", 0).unwrap();
        // Out-of-range literals are an error, not a silent mask.
        let err = sim.poke("en", 0xFF).unwrap_err();
        match &err {
            SimError::ValueTooWide { port, width, value } => {
                assert_eq!(port, "en");
                assert_eq!(*width, 1);
                assert_eq!(*value, 0xFF);
            }
            other => panic!("expected ValueTooWide, got {other:?}"),
        }
        // The rejected poke must not have clobbered the port value.
        assert_eq!(sim.peek("en").unwrap(), 0);
    }

    #[test]
    fn sim_error_display_formats() {
        assert_eq!(SimError::NoSuchPort("x".into()).to_string(), "no such port: x");
        assert_eq!(
            SimError::ValueTooWide { port: "en".into(), width: 1, value: 255 }.to_string(),
            "value 255 does not fit input port en (1 bits)"
        );
        assert_eq!(
            SimError::Eval(EvalError::UnknownSignal("s".into())).to_string(),
            "evaluation error: unknown signal s"
        );
        assert_eq!(
            SimError::from(EvalError::UnsupportedExpression("w.f".into())).to_string(),
            "evaluation error: unsupported expression during simulation: w.f"
        );
        // SimError is a std error with no source chaining.
        let err: Box<dyn std::error::Error> = Box::new(SimError::NoSuchPort("x".into()));
        assert!(err.source().is_none());
    }

    #[test]
    fn outputs_lists_output_ports() {
        let sim = Simulator::new(counter_netlist());
        let outs = sim.outputs();
        assert_eq!(outs.len(), 1);
        assert_eq!(outs[0].0, "out");
        assert_eq!(sim.input_names(), vec!["en".to_string()]);
    }

    #[test]
    fn register_without_reset_holds_value() {
        let mut m = ModuleBuilder::new("Hold");
        let d = m.input("d", Type::uint(4));
        let we = m.input("we", Type::bool());
        let q = m.output("q", Type::uint(4));
        let r = m.reg("r", Type::uint(4));
        m.when(&we, |m| m.connect(&r, &d));
        m.connect(&q, &r);
        let netlist = lower_circuit(&m.into_circuit()).unwrap();
        let mut sim = Simulator::new(netlist);
        sim.poke("d", 9).unwrap();
        sim.poke("we", 1).unwrap();
        sim.step().unwrap();
        assert_eq!(sim.peek("q").unwrap(), 9);
        sim.poke("we", 0).unwrap();
        sim.poke("d", 3).unwrap();
        sim.step_n(4).unwrap();
        assert_eq!(sim.peek("q").unwrap(), 9);
    }
}
