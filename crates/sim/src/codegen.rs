//! Native codegen: emit a compiled [`Tape`] as straight-line Rust source.
//!
//! This is the Verilator move applied to the instruction tape: instead of a `for` loop
//! dispatching on an [`Instr`](crate::compiled) enum per operation, every instruction
//! of the levelized program becomes one line of Rust — a shift, a mask, a mux select —
//! with slot indices, masks, constants and commit lists baked in as literals. The
//! emitted module exposes a tiny C ABI (`rechisel_native_step` & friends over a
//! `*mut u128` state array and a `*mut u128` memory array) that the AOT driver in
//! [`crate::native`] compiles with `cargo build` and loads with `dlopen`, behind the
//! ordinary [`SimEngine`](crate::SimEngine) trait.
//!
//! Three things make the straight-line form legal:
//!
//! * **All-specialized tapes only write bits.** Named slots have pinned metadata and
//!   specialized instructions touch `bits` alone, so the generated state is a bare
//!   `[u128; SLOTS]` — widths and sign-extension shifts are compile-time literals.
//! * **Constant slots are pooled and never written** after tape construction, so their
//!   values are inlined as literals instead of loads (the constant pool does not even
//!   need to exist in the generated code, though the host still allocates the full
//!   slot array so peeks and slot indices stay identical).
//! * **Dynamic shapes are rejected, not approximated.** A tape containing a generic
//!   `Prim1`/`Prim2`/`Mux` instruction (a `dshl` whose result width tracks the shift
//!   *value*, mux arms of different shapes) fails with [`CodegenError::DynamicShape`];
//!   [`EngineKind::Native`](crate::EngineKind) then falls back to the compiled tape
//!   engine rather than emitting uncompilable or slow source.
//!
//! [`RustBackend`] plugs the same emission into the staged pipeline as a first-class
//! [`EmitBackend`] — generated Rust is an artifact exactly like emitted Verilog, and
//! the benchsuite pins it with golden files.

use std::fmt::Write as _;

use rechisel_firrtl::diagnostics::{Diagnostic, ErrorCode};
use rechisel_firrtl::ir::{Circuit, PrimOp, SourceInfo};
use rechisel_firrtl::lower::Netlist;
use rechisel_firrtl::pipeline::EmitBackend;

use crate::compiled::{ext, CmpKind, Instr, MemCommit, Meta, Tape};

/// ABI version stamped into every generated module and checked at load time.
pub const NATIVE_ABI_VERSION: u64 = 1;

/// Package name of the generated crate (library name `rechisel_native_gen`).
pub const GENERATED_CRATE_NAME: &str = "rechisel-native-gen";

/// Errors produced while emitting native source from a tape.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodegenError {
    /// The tape contains a generic instruction whose result shape is only known at
    /// run time (`dshl` results, mux arms of different shapes). Straight-line code
    /// bakes widths and masks in as literals, so these tapes cannot be compiled
    /// natively; the native engine falls back to the compiled tape instead.
    DynamicShape {
        /// Debug rendering of the offending instruction.
        instruction: String,
    },
}

impl std::fmt::Display for CodegenError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CodegenError::DynamicShape { instruction } => write!(
                f,
                "tape contains a dynamically-shaped instruction that cannot be compiled to \
                 straight-line code: {instruction}"
            ),
        }
    }
}

impl std::error::Error for CodegenError {}

/// A self-contained generated crate: manifest plus library source.
///
/// The crate has zero dependencies and carries its own `[workspace]` table, so it
/// builds offline anywhere — including inside another workspace's checkout — with a
/// bare `cargo build --release --offline`.
#[derive(Debug, Clone)]
pub struct GeneratedCrate {
    /// `src/lib.rs` of the generated crate.
    pub lib_rs: String,
    /// `Cargo.toml` of the generated crate.
    pub cargo_toml: String,
    /// FNV-1a digest of the source (sans the fingerprint export itself); the loader
    /// checks it against `rechisel_native_fingerprint()` to reject stale artifacts.
    pub fingerprint: u64,
}

/// FNV-1a 64-bit digest, used to fingerprint generated sources.
pub(crate) fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for b in bytes {
        hash ^= u64::from(*b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// Per-tape emission state: which slots hold pooled constants that can be inlined.
struct Emitter<'t> {
    tape: &'t Tape,
    /// `Some(bits)` for slots that are never written after construction (the pooled
    /// constants): reads of them are emitted as literals instead of loads.
    constant: Vec<Option<u128>>,
}

impl<'t> Emitter<'t> {
    fn new(tape: &'t Tape) -> Self {
        // A slot is an inlineable constant iff nothing ever writes it: it is not a
        // named slot (pokes and peeks go through those), not an instruction
        // destination, and not a register commit target. What remains is exactly the
        // constant pool plus dead temporaries, both frozen at their initial bits.
        let mut written = vec![false; tape.init.len()];
        for name_slot in tape.index.values() {
            written[*name_slot as usize] = true;
        }
        for instr in tape.comb.iter().chain(tape.reg_program.iter()) {
            if let Some(dst) = instr_dst(instr) {
                written[dst as usize] = true;
            }
        }
        for commit in &tape.commits {
            written[commit.reg as usize] = true;
        }
        let constant = written
            .iter()
            .enumerate()
            .map(|(slot, w)| if *w { None } else { Some(tape.init[slot].bits) })
            .collect();
        Self { tape, constant }
    }

    /// The static shape of `slot`, `None` when its width tracks a run-time value.
    fn meta(&self, slot: u32) -> Option<Meta> {
        self.tape.metas[slot as usize]
    }

    /// A `u128` expression reading `slot`: a literal for constants, a load otherwise.
    fn src(&self, slot: u32) -> String {
        match self.constant[slot as usize] {
            Some(v) => format!("{v:#x}u128"),
            None => format!("s[{slot}]"),
        }
    }

    /// An `i128` expression reading `slot` sign-extended through bit 127 by `shift`.
    fn sext_src(&self, slot: u32, shift: u32) -> String {
        match self.constant[slot as usize] {
            Some(v) => format!("({}i128)", ext(v, shift)),
            None if shift == 0 => format!("(s[{slot}] as i128)"),
            None => format!("sx(s[{slot}], {shift})"),
        }
    }

    /// One straight-line statement per instruction. Generic instructions are the
    /// dynamic-shape cases and are rejected.
    fn instr(&self, instr: &Instr) -> Result<String, CodegenError> {
        Ok(match *instr {
            Instr::CopyMask { dst, src, mask } => {
                if mask == u128::MAX {
                    format!("s[{dst}] = {};", self.src(src))
                } else {
                    format!("s[{dst}] = {} & {mask:#x};", self.src(src))
                }
            }
            Instr::Not { dst, a, mask } => format!("s[{dst}] = !{} & {mask:#x};", self.src(a)),
            Instr::And { dst, a, b } => {
                format!("s[{dst}] = {} & {};", self.src(a), self.src(b))
            }
            Instr::Or { dst, a, b } => format!("s[{dst}] = {} | {};", self.src(a), self.src(b)),
            Instr::Xor { dst, a, b } => {
                format!("s[{dst}] = {} ^ {};", self.src(a), self.src(b))
            }
            Instr::AddSub { dst, a, b, sa, sb, mask, sub } => {
                let op = if sub { "wrapping_sub" } else { "wrapping_add" };
                format!(
                    "s[{dst}] = {}.{op}({}) as u128 & {mask:#x};",
                    self.sext_src(a, sa),
                    self.sext_src(b, sb)
                )
            }
            Instr::Cmp { dst, a, b, sa, sb, kind, signed } => {
                let op = match kind {
                    CmpKind::Eq => "==",
                    CmpKind::Neq => "!=",
                    CmpKind::Lt => "<",
                    CmpKind::Leq => "<=",
                    CmpKind::Gt => ">",
                    CmpKind::Geq => ">=",
                };
                // Equality always compares per-operand signed interpretations;
                // orderings are signed iff either operand is (mirroring `exec`).
                let (lhs, rhs) = if matches!(kind, CmpKind::Eq | CmpKind::Neq) || signed {
                    (self.sext_src(a, sa), self.sext_src(b, sb))
                } else {
                    (self.src(a), self.src(b))
                };
                format!("s[{dst}] = u128::from({lhs} {op} {rhs});")
            }
            Instr::MuxBits { dst, c, t, f } => format!(
                "s[{dst}] = if {} & 1 != 0 {{ {} }} else {{ {} }};",
                self.src(c),
                self.src(t),
                self.src(f)
            ),
            Instr::Slice { dst, a, lo, mask } => {
                if lo == 0 {
                    format!("s[{dst}] = {} & {mask:#x};", self.src(a))
                } else {
                    format!("s[{dst}] = ({} >> {lo}) & {mask:#x};", self.src(a))
                }
            }
            Instr::CatBits { dst, a, b, shift, mask } => {
                format!("s[{dst}] = (({} << {shift}) | {}) & {mask:#x};", self.src(a), self.src(b))
            }
            Instr::MemRead { dst, addr, base, depth } => {
                let a = self.src(addr);
                format!(
                    "s[{dst}] = if {a} < {depth}u128 {{ m[{base}usize + {a} as usize] }} \
                     else {{ 0 }};"
                )
            }
            Instr::Prim1 { op, dst, a, p0, p1 } => match (self.meta(a), self.meta(dst)) {
                (Some(am), Some(rm)) => self.prim1(instr, op, dst, a, p0, p1, am, rm)?,
                _ => return Err(CodegenError::DynamicShape { instruction: format!("{instr:?}") }),
            },
            Instr::Prim2 { op, dst, a, b } => match (self.meta(a), self.meta(b), self.meta(dst)) {
                (Some(am), Some(bm), Some(rm)) => self.prim2(instr, op, dst, a, b, am, bm, rm)?,
                _ => return Err(CodegenError::DynamicShape { instruction: format!("{instr:?}") }),
            },
            // A generic select only exists when the arm shapes differ (the builder
            // gives its destination a dynamic shape) — never expressible here.
            Instr::Mux { .. } => {
                return Err(CodegenError::DynamicShape { instruction: format!("{instr:?}") })
            }
        })
    }

    /// A generic unary instruction whose operand and result shapes are static: the
    /// [`apply_prim`](crate::eval::apply_prim) semantics specialized to literals.
    #[allow(clippy::too_many_arguments)]
    fn prim1(
        &self,
        instr: &Instr,
        op: PrimOp,
        dst: u32,
        a: u32,
        p0: i64,
        p1: i64,
        am: Meta,
        rm: Meta,
    ) -> Result<String, CodegenError> {
        use PrimOp::*;
        let src = self.src(a);
        let m = rm.mask();
        Ok(match op {
            Not => format!("s[{dst}] = !{src} & {m:#x};"),
            Shl => {
                let n = p0.max(0) as u32;
                if n >= 128 {
                    format!("s[{dst}] = 0;")
                } else {
                    format!("s[{dst}] = ({src} << {n}) & {m:#x};")
                }
            }
            Shr => {
                let n = p0.max(0) as u32;
                if am.signed {
                    format!(
                        "s[{dst}] = ({} >> {}) as u128 & {m:#x};",
                        self.sext_src(a, am.sext_shift()),
                        n.min(127)
                    )
                } else if n >= 128 {
                    format!("s[{dst}] = 0;")
                } else {
                    format!("s[{dst}] = ({src} >> {n}) & {m:#x};")
                }
            }
            Bits => {
                let lo = p1.max(0) as u32;
                if lo >= 128 {
                    format!("s[{dst}] = 0;")
                } else {
                    format!("s[{dst}] = ({src} >> {lo}) & {m:#x};")
                }
            }
            AndR => format!("s[{dst}] = u128::from({src} == {:#x});", am.mask()),
            OrR => format!("s[{dst}] = u128::from({src} != 0);"),
            XorR => format!("s[{dst}] = u128::from({src}.count_ones() & 1 == 1);"),
            AsUInt | AsSInt => format!("s[{dst}] = {src} & {m:#x};"),
            AsBool | AsClock | AsAsyncReset => format!("s[{dst}] = {src} & 1;"),
            Neg => format!(
                "s[{dst}] = {}.wrapping_neg() as u128 & {m:#x};",
                self.sext_src(a, am.sext_shift())
            ),
            Pad => {
                if am.signed {
                    format!("s[{dst}] = {} as u128 & {m:#x};", self.sext_src(a, am.sext_shift()))
                } else {
                    format!("s[{dst}] = {src};")
                }
            }
            Tail => format!("s[{dst}] = {src} & {m:#x};"),
            Head => {
                let keep = (p0.max(0) as u32).max(1);
                let shift = am.width.saturating_sub(keep);
                if shift == 0 {
                    format!("s[{dst}] = {src} & {m:#x};")
                } else if shift >= 128 {
                    format!("s[{dst}] = 0;")
                } else {
                    format!("s[{dst}] = ({src} >> {shift}) & {m:#x};")
                }
            }
            _ => return Err(CodegenError::DynamicShape { instruction: format!("{instr:?}") }),
        })
    }

    /// A generic binary instruction whose operand and result shapes are static. The
    /// shapes the builder's specialized instructions do not cover: multiplication,
    /// division/remainder (with the divide-by-zero-yields-zero rule), dynamic right
    /// shifts, and word-boundary concatenations.
    #[allow(clippy::too_many_arguments)]
    fn prim2(
        &self,
        instr: &Instr,
        op: PrimOp,
        dst: u32,
        a: u32,
        b: u32,
        am: Meta,
        bm: Meta,
        rm: Meta,
    ) -> Result<String, CodegenError> {
        use PrimOp::*;
        let m = rm.mask();
        let ea = self.sext_src(a, am.sext_shift());
        let eb = self.sext_src(b, bm.sext_shift());
        let signed = am.signed || bm.signed;
        Ok(match op {
            Mul => format!("s[{dst}] = {ea}.wrapping_mul({eb}) as u128 & {m:#x};"),
            Div => {
                if signed {
                    format!(
                        "s[{dst}] = if {eb} == 0 {{ 0 }} else \
                         {{ {ea}.wrapping_div({eb}) as u128 & {m:#x} }};"
                    )
                } else {
                    format!(
                        "s[{dst}] = if {} == 0 {{ 0 }} else {{ ({} / {}) & {m:#x} }};",
                        self.src(b),
                        self.src(a),
                        self.src(b)
                    )
                }
            }
            Rem => {
                if signed {
                    format!(
                        "s[{dst}] = if {eb} == 0 {{ 0 }} else \
                         {{ {ea}.wrapping_rem({eb}) as u128 & {m:#x} }};"
                    )
                } else {
                    format!(
                        "s[{dst}] = if {} == 0 {{ 0 }} else {{ ({} % {}) & {m:#x} }};",
                        self.src(b),
                        self.src(a),
                        self.src(b)
                    )
                }
            }
            Dshr => {
                // The shift amount is the *unsigned* bit pattern of b (mirroring
                // `apply_prim`); a logical over-shift zeroes, an arithmetic one
                // sign-fills (shift clamped to 127).
                if am.signed {
                    format!("s[{dst}] = ({ea} >> {}.min(127)) as u128 & {m:#x};", self.src(b))
                } else {
                    format!(
                        "s[{dst}] = if {} >= 128 {{ 0 }} else {{ ({} >> {}) & {m:#x} }};",
                        self.src(b),
                        self.src(a),
                        self.src(b)
                    )
                }
            }
            Cat => {
                if bm.width >= 128 {
                    // The low part fills the whole word; the high part shifts out.
                    format!("s[{dst}] = {};", self.src(b))
                } else {
                    format!(
                        "s[{dst}] = (({} << {}) | {}) & {m:#x};",
                        self.src(a),
                        bm.width,
                        self.src(b)
                    )
                }
            }
            _ => return Err(CodegenError::DynamicShape { instruction: format!("{instr:?}") }),
        })
    }

    /// One staged memory write. The guard (`domain == N`) is baked in for the
    /// filtered commit path and omitted for the all-domain path; the merge and the
    /// whole-word store mirror `CompiledSimulator::step_filtered` line for line.
    fn mem_commit(&self, c: &MemCommit, out: &mut String, indent: &str, filtered: bool) {
        let (open, inner) = if filtered {
            let _ = writeln!(out, "{indent}if d == {} {{", c.domain);
            (format!("{indent}    "), true)
        } else {
            (indent.to_string(), false)
        };
        let _ = writeln!(out, "{open}if {} & 1 != 0 {{", self.src(c.en));
        let _ = writeln!(out, "{open}    let a = {};", self.src(c.addr));
        let _ = writeln!(out, "{open}    if a < {}u128 {{", c.depth);
        let _ = writeln!(out, "{open}        let v = {} & {:#x};", self.src(c.val), c.mask);
        let word = match c.lane {
            None => "v".to_string(),
            Some((lane, old)) => {
                let _ =
                    writeln!(out, "{open}        let lanes = {} & {:#x};", self.src(lane), c.mask);
                format!("({} & !lanes) | (v & lanes)", self.src(old))
            }
        };
        let _ = writeln!(out, "{open}        m[{}usize + a as usize] = {word};", c.base);
        let _ = writeln!(out, "{open}    }}");
        let _ = writeln!(out, "{open}}}");
        if inner {
            let _ = writeln!(out, "{indent}}}");
        }
    }
}

/// The destination slot an instruction writes, if any (all instructions write one).
fn instr_dst(instr: &Instr) -> Option<u32> {
    Some(match *instr {
        Instr::CopyMask { dst, .. }
        | Instr::Not { dst, .. }
        | Instr::And { dst, .. }
        | Instr::Or { dst, .. }
        | Instr::Xor { dst, .. }
        | Instr::AddSub { dst, .. }
        | Instr::Cmp { dst, .. }
        | Instr::MuxBits { dst, .. }
        | Instr::Slice { dst, .. }
        | Instr::CatBits { dst, .. }
        | Instr::Prim1 { dst, .. }
        | Instr::Prim2 { dst, .. }
        | Instr::Mux { dst, .. }
        | Instr::MemRead { dst, .. } => dst,
    })
}

/// Emits the generated module's `lib.rs` for a tape.
///
/// The source is deterministic for a given tape (stable slot indices, stable
/// orderings), so it can be pinned by golden files and fingerprinted for caching.
///
/// # Errors
///
/// Returns [`CodegenError::DynamicShape`] when the tape contains generic
/// (dynamically-shaped) instructions.
///
/// # Example
///
/// ```
/// use rechisel_hcl::prelude::*;
/// use rechisel_sim::{codegen, Tape};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut m = ModuleBuilder::new("AddOne");
/// let a = m.input("a", Type::uint(8));
/// let out = m.output("out", Type::uint(8));
/// m.connect(&out, &a.add(&Signal::lit_w(1, 8)).bits(7, 0));
/// let netlist = rechisel_firrtl::lower_circuit(&m.into_circuit())?;
/// let tape = Tape::compile(&netlist)?;
///
/// let source = codegen::emit_tape_source(&tape)?;
/// assert!(source.contains("rechisel_native_step"));
/// # Ok(())
/// # }
/// ```
pub fn emit_tape_source(tape: &Tape) -> Result<String, CodegenError> {
    let em = Emitter::new(tape);
    let slots = tape.init.len();
    let mw = tape.mem_init.len();

    let mut out = String::new();
    let _ = writeln!(
        out,
        "// Generated by rechisel-sim native codegen for module `{}` — do not edit.",
        tape.name
    );
    let _ = writeln!(
        out,
        "// slots: {slots}, mem words: {mw}, clock domains: {}, instructions/cycle: {}",
        tape.domains.len(),
        tape.instructions_per_cycle()
    );
    out.push_str("#![allow(dead_code, unused_variables, clippy::all)]\n\n");

    // Sign-extension helper shared by add/sub/compare lines.
    out.push_str("#[inline(always)]\n");
    out.push_str("fn sx(bits: u128, shift: u32) -> i128 {\n");
    out.push_str("    ((bits << shift) as i128) >> shift\n");
    out.push_str("}\n\n");

    // Combinational program (runs before and after every commit).
    let _ = writeln!(out, "#[inline]\nfn comb(s: &mut [u128; {slots}], m: &[u128; {mw}]) {{");
    for instr in &tape.comb {
        let _ = writeln!(out, "    {}", em.instr(instr)?);
    }
    out.push_str("}\n\n");

    // Register/memory-port staging program (writes staging slots only).
    let _ = writeln!(out, "#[inline]\nfn stage(s: &mut [u128; {slots}], m: &[u128; {mw}]) {{");
    for instr in &tape.reg_program {
        let _ = writeln!(out, "    {}", em.instr(instr)?);
    }
    out.push_str("}\n\n");

    // All-domain commit: memory writes first (operands still pre-edge), registers
    // second — the branch-free body of `step()`.
    let _ =
        writeln!(out, "#[inline]\nfn commit_all(s: &mut [u128; {slots}], m: &mut [u128; {mw}]) {{");
    for c in &tape.mem_commits {
        em.mem_commit(c, &mut out, "    ", false);
    }
    for c in &tape.commits {
        if c.mask == u128::MAX {
            let _ = writeln!(out, "    s[{}] = {};", c.reg, em.src(c.staged));
        } else {
            let _ = writeln!(out, "    s[{}] = {} & {:#x};", c.reg, em.src(c.staged), c.mask);
        }
    }
    out.push_str("}\n\n");

    // Domain-filtered commit: identical, with each commit guarded by its baked-in
    // domain index (the `step_clock` path).
    let _ = writeln!(
        out,
        "#[inline]\nfn commit_domain(s: &mut [u128; {slots}], m: &mut [u128; {mw}], d: u32) {{"
    );
    for c in &tape.mem_commits {
        em.mem_commit(c, &mut out, "    ", true);
    }
    for c in &tape.commits {
        let store = if c.mask == u128::MAX {
            format!("s[{}] = {};", c.reg, em.src(c.staged))
        } else {
            format!("s[{}] = {} & {:#x};", c.reg, em.src(c.staged), c.mask)
        };
        let _ = writeln!(out, "    if d == {} {{ {store} }}", c.domain);
    }
    out.push_str("}\n\n");

    // The exported C ABI. Pointers come from the host's `Vec<u128>` allocations of
    // exactly SLOTS/MEM_WORDS elements; fixed-size array references let rustc elide
    // bounds checks on every literal index.
    let _ = writeln!(
        out,
        "/// # Safety\n/// `state` must point to {slots} u128 words and `mem` to {mw}.\n\
         #[no_mangle]\n\
         pub unsafe extern \"C\" fn rechisel_native_eval(state: *mut u128, mem: *const u128) {{\n    \
         let s = &mut *(state as *mut [u128; {slots}]);\n    \
         let m = &*(mem as *const [u128; {mw}]);\n    \
         comb(s, m);\n}}\n"
    );
    let _ = writeln!(
        out,
        "/// # Safety\n/// `state` must point to {slots} u128 words and `mem` to {mw}.\n\
         #[no_mangle]\n\
         pub unsafe extern \"C\" fn rechisel_native_step(state: *mut u128, mem: *mut u128) {{\n    \
         let s = &mut *(state as *mut [u128; {slots}]);\n    \
         let m = &mut *(mem as *mut [u128; {mw}]);\n    \
         comb(s, m);\n    \
         stage(s, m);\n    \
         commit_all(s, m);\n    \
         comb(s, m);\n}}\n"
    );
    let _ = writeln!(
        out,
        "/// # Safety\n/// `state` must point to {slots} u128 words and `mem` to {mw}.\n\
         #[no_mangle]\n\
         pub unsafe extern \"C\" fn rechisel_native_step_domain(\n    \
         state: *mut u128,\n    \
         mem: *mut u128,\n    \
         domain: u32,\n\
         ) {{\n    \
         let s = &mut *(state as *mut [u128; {slots}]);\n    \
         let m = &mut *(mem as *mut [u128; {mw}]);\n    \
         comb(s, m);\n    \
         stage(s, m);\n    \
         commit_domain(s, m, domain);\n    \
         comb(s, m);\n}}\n"
    );
    let _ = writeln!(
        out,
        "#[no_mangle]\npub extern \"C\" fn rechisel_native_abi() -> u64 {{\n    \
         {NATIVE_ABI_VERSION}\n}}\n"
    );
    let _ = writeln!(
        out,
        "#[no_mangle]\npub extern \"C\" fn rechisel_native_slots() -> u64 {{\n    {slots}\n}}\n"
    );
    let _ = writeln!(
        out,
        "#[no_mangle]\npub extern \"C\" fn rechisel_native_mem_words() -> u64 {{\n    {mw}\n}}\n"
    );
    let _ = writeln!(
        out,
        "#[no_mangle]\npub extern \"C\" fn rechisel_native_domains() -> u64 {{\n    {}\n}}\n",
        tape.domains.len()
    );
    Ok(out)
}

/// Emits the complete generated crate (manifest + source + fingerprint) for a tape.
///
/// The fingerprint export is appended *after* digesting the rest of the source, so
/// the loader can verify that a `dlopen`ed artifact was built from exactly this
/// emission.
///
/// # Errors
///
/// Same conditions as [`emit_tape_source`].
pub fn generate_crate(tape: &Tape) -> Result<GeneratedCrate, CodegenError> {
    let mut lib_rs = emit_tape_source(tape)?;
    let fingerprint = fnv1a64(lib_rs.as_bytes());
    let _ = writeln!(
        lib_rs,
        "#[no_mangle]\npub extern \"C\" fn rechisel_native_fingerprint() -> u64 {{\n    \
         {fingerprint:#x}\n}}"
    );
    let cargo_toml = format!(
        "# Generated by rechisel-sim native codegen — build artifact, do not edit.\n\
         [package]\n\
         name = \"{GENERATED_CRATE_NAME}\"\n\
         version = \"0.0.0\"\n\
         edition = \"2021\"\n\
         \n\
         # Detach from any enclosing workspace so the crate builds standalone.\n\
         [workspace]\n\
         \n\
         [lib]\n\
         crate-type = [\"cdylib\"]\n\
         \n\
         [profile.release]\n\
         opt-level = 3\n"
    );
    Ok(GeneratedCrate { lib_rs, cargo_toml, fingerprint })
}

/// The native-codegen [`EmitBackend`]: generated Rust as a first-class pipeline
/// artifact, exactly like emitted Verilog.
///
/// # Example
///
/// ```
/// use rechisel_firrtl::pipeline::Pipeline;
/// use rechisel_hcl::prelude::*;
/// use rechisel_sim::RustBackend;
///
/// let mut m = ModuleBuilder::new("Inverter");
/// let a = m.input("a", Type::bool());
/// let y = m.output("y", Type::bool());
/// m.connect(&y, &a.not());
///
/// let pipeline = Pipeline::new(RustBackend);
/// let output = pipeline.run(&m.into_circuit()).expect("clean design");
/// assert_eq!(output.backend, "rust");
/// assert!(output.output.contains("rechisel_native_step"));
/// ```
#[derive(Debug, Clone, Copy, Default)]
pub struct RustBackend;

impl EmitBackend for RustBackend {
    fn name(&self) -> &'static str {
        "rust"
    }

    fn file_extension(&self) -> &'static str {
        "rs"
    }

    fn emit(&self, _circuit: &Circuit, netlist: &Netlist) -> Result<String, Diagnostic> {
        let tape = Tape::compile(netlist).map_err(|e| {
            Diagnostic::error(
                ErrorCode::UnknownReference,
                SourceInfo::unknown(),
                format!("native codegen could not compile the netlist to a tape: {e}"),
            )
        })?;
        emit_tape_source(&tape).map_err(|e| {
            Diagnostic::error(
                ErrorCode::WidthInferenceFailure,
                SourceInfo::unknown(),
                format!("native codegen failed: {e}"),
            )
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rechisel_firrtl::lower_circuit;
    use rechisel_hcl::prelude::*;

    fn counter_netlist() -> Netlist {
        let mut m = ModuleBuilder::new("Counter");
        let en = m.input("en", Type::bool());
        let out = m.output("out", Type::uint(8));
        let count = m.reg_init("count", Type::uint(8), &Signal::lit_w(0, 8));
        m.when(&en, |m| {
            let next = count.add(&Signal::lit_w(1, 8)).bits(7, 0);
            m.connect(&count, &next);
        });
        m.connect(&out, &count);
        lower_circuit(&m.into_circuit()).unwrap()
    }

    #[test]
    fn emits_straight_line_source_with_the_full_abi() {
        let tape = Tape::compile(&counter_netlist()).unwrap();
        let source = emit_tape_source(&tape).unwrap();
        for symbol in [
            "rechisel_native_eval",
            "rechisel_native_step",
            "rechisel_native_step_domain",
            "rechisel_native_abi",
            "rechisel_native_slots",
            "rechisel_native_mem_words",
            "rechisel_native_domains",
        ] {
            assert!(source.contains(symbol), "missing export {symbol}");
        }
        // Straight-line means no interpreter loop and no dispatch on Instr.
        assert!(!source.contains("apply_prim"));
        assert!(!source.contains("match"));
    }

    #[test]
    fn constants_are_inlined_as_literals() {
        // The counter's `+ 1` literal lives in the constant pool; the generated
        // source must read it as a literal, never as a state load.
        let tape = Tape::compile(&counter_netlist()).unwrap();
        let em = Emitter::new(&tape);
        let inlined = em.constant.iter().flatten().count();
        assert!(inlined >= 1, "expected at least one pooled constant to inline");
        let source = emit_tape_source(&tape).unwrap();
        assert!(source.contains("u128"), "inlined literals carry explicit suffixes");
    }

    #[test]
    fn generated_crate_is_fingerprinted_and_standalone() {
        let tape = Tape::compile(&counter_netlist()).unwrap();
        let gen = generate_crate(&tape).unwrap();
        assert!(gen.cargo_toml.contains("[workspace]"), "must detach from outer workspaces");
        assert!(gen.cargo_toml.contains("cdylib"));
        assert!(gen.lib_rs.contains("rechisel_native_fingerprint"));
        assert!(gen.lib_rs.contains(&format!("{:#x}", gen.fingerprint)));
        // Deterministic: the same tape emits byte-identical source.
        let again = generate_crate(&tape).unwrap();
        assert_eq!(gen.lib_rs, again.lib_rs);
        assert_eq!(gen.fingerprint, again.fingerprint);
    }

    #[test]
    fn dynamic_shapes_are_rejected_with_a_typed_error() {
        // `dshl` result width tracks the shift value — the canonical dynamic shape.
        let mut m = ModuleBuilder::new("Dyn");
        let a = m.input("a", Type::uint(8));
        let sh = m.input("sh", Type::uint(3));
        let out = m.output("out", Type::uint(16));
        m.connect(&out, &a.dshl(&sh).bits(15, 0));
        let netlist = lower_circuit(&m.into_circuit()).unwrap();
        let tape = Tape::compile(&netlist).unwrap();
        match emit_tape_source(&tape) {
            Err(CodegenError::DynamicShape { instruction }) => {
                assert!(instruction.contains("Prim2"), "got {instruction}");
            }
            other => panic!("expected DynamicShape, got {other:?}"),
        }
    }

    #[test]
    fn rust_backend_is_a_first_class_emit_backend() {
        let mut m = ModuleBuilder::new("Buf");
        let a = m.input("a", Type::bool());
        let y = m.output("y", Type::bool());
        m.connect(&y, &a);
        let circuit = m.into_circuit();
        let netlist = lower_circuit(&circuit).unwrap();
        let backend = RustBackend;
        assert_eq!(backend.name(), "rust");
        assert_eq!(backend.file_extension(), "rs");
        let source = backend.emit(&circuit, &netlist).unwrap();
        assert!(source.contains("rechisel_native_step"));
    }

    #[test]
    fn rust_backend_reports_dynamic_shapes_as_diagnostics() {
        let mut m = ModuleBuilder::new("Dyn");
        let a = m.input("a", Type::uint(8));
        let sh = m.input("sh", Type::uint(3));
        let out = m.output("out", Type::uint(16));
        m.connect(&out, &a.dshl(&sh).bits(15, 0));
        let circuit = m.into_circuit();
        let netlist = lower_circuit(&circuit).unwrap();
        let err = RustBackend.emit(&circuit, &netlist).unwrap_err();
        assert!(err.message.contains("native codegen failed"), "got {}", err.message);
    }

    #[test]
    fn fnv_digest_is_stable() {
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_ne!(fnv1a64(b"a"), fnv1a64(b"b"));
    }
}
