//! # rechisel-sim
//!
//! A cycle-accurate RTL simulator and testbench framework over the lowered netlists of
//! `rechisel-firrtl` — the "Simulator" external tool of the ReChisel workflow (step ❸
//! of the paper's Fig. 2).
//!
//! The crate provides:
//!
//! * [`SimEngine`] — the execution-engine trait, with three implementations
//!   selectable via [`EngineKind`]:
//!   [`Simulator`] (tree-walking interpreter, the semantic reference),
//!   [`CompiledSimulator`] (a levelized instruction [`Tape`] with slot-indexed state —
//!   no hashing or allocation per cycle, typically an order of magnitude faster;
//!   compile once, simulate many), and [`BatchedSimulator`] (N independent stimulus
//!   lanes through one tape in lockstep — structure-of-arrays state that amortizes
//!   instruction dispatch over the whole batch), plus a fourth, AOT-compiled engine:
//!   [`NativeSimulator`] ([`EngineKind::Native`]) emits the tape as straight-line
//!   Rust via [`codegen`], builds it with `cargo build`, and `dlopen`s the result —
//!   no interpretation at all per cycle (see [`native_or_fallback`] for the
//!   graceful degradation to the compiled tape on unsupported designs).
//! * [`Testbench`] / [`FunctionalPoint`] — stimulus description, including seeded random
//!   stimulus generation.
//! * [`run_testbench`] / [`run_testbench_with`] / [`run_testbench_on`] —
//!   DUT-vs-reference comparison producing the [`SimReport`] whose
//!   [`PointFailure`]s become the "functional error" feedback consumed by the ReChisel
//!   Reviewer agent.
//!
//! # Example
//!
//! ```
//! use rechisel_hcl::prelude::*;
//! use rechisel_sim::{run_testbench, Testbench};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let build = |name: &str| {
//!     let mut m = ModuleBuilder::new(name);
//!     let a = m.input("a", Type::uint(4));
//!     let out = m.output("out", Type::uint(4));
//!     m.connect(&out, &a.not().bits(3, 0));
//!     rechisel_firrtl::lower_circuit(&m.into_circuit()).unwrap()
//! };
//! let dut = build("Dut");
//! let reference = build("Ref");
//! let tb = Testbench::random_for(&reference, 16, 0, 1);
//! let report = run_testbench(&dut, &reference, &tb)?;
//! assert!(report.passed());
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

pub mod batched;
pub mod codegen;
pub mod compiled;
pub mod engine;
pub mod eval;
pub mod native;
pub mod schedule;
pub mod simulator;
pub mod testbench;

pub use batched::BatchedSimulator;
pub use codegen::{CodegenError, GeneratedCrate, RustBackend};
pub use compiled::{CompiledSimulator, Tape};
pub use engine::{EngineKind, SimEngine};
pub use eval::{apply_prim, eval_expr, EvalError, EvalValue};
pub use native::{
    native_or_fallback, NativeBuildError, NativeFallback, NativeOptions, NativeSimulator,
};
pub use schedule::{Edge, EdgeQueue};
pub use simulator::{SimError, Simulator};
pub use testbench::{
    record_reference_trace, run_testbench, run_testbench_against_trace, run_testbench_batched,
    run_testbench_on, run_testbench_with, FunctionalPoint, OutputTrace, PointFailure, SimReport,
    Testbench,
};
