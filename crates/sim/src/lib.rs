//! # rechisel-sim
//!
//! A cycle-accurate RTL simulator and testbench framework over the lowered netlists of
//! `rechisel-firrtl` — the "Simulator" external tool of the ReChisel workflow (step ❸
//! of the paper's Fig. 2).
//!
//! The crate provides:
//!
//! * [`Simulator`] — poke/peek/step interpretation of a [`rechisel_firrtl::Netlist`].
//! * [`Testbench`] / [`FunctionalPoint`] — stimulus description, including seeded random
//!   stimulus generation.
//! * [`run_testbench`] — DUT-vs-reference comparison producing the [`SimReport`] whose
//!   [`PointFailure`]s become the "functional error" feedback consumed by the ReChisel
//!   Reviewer agent.
//!
//! # Example
//!
//! ```
//! use rechisel_hcl::prelude::*;
//! use rechisel_sim::{run_testbench, Testbench};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let build = |name: &str| {
//!     let mut m = ModuleBuilder::new(name);
//!     let a = m.input("a", Type::uint(4));
//!     let out = m.output("out", Type::uint(4));
//!     m.connect(&out, &a.not().bits(3, 0));
//!     rechisel_firrtl::lower_circuit(&m.into_circuit()).unwrap()
//! };
//! let dut = build("Dut");
//! let reference = build("Ref");
//! let tb = Testbench::random_for(&reference, 16, 0, 1);
//! let report = run_testbench(&dut, &reference, &tb)?;
//! assert!(report.passed());
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

pub mod eval;
pub mod simulator;
pub mod testbench;

pub use eval::{eval_expr, EvalError, EvalValue};
pub use simulator::{SimError, Simulator};
pub use testbench::{run_testbench, FunctionalPoint, PointFailure, SimReport, Testbench};
