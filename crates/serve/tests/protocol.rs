//! Protocol robustness: a server fed malformed, truncated or oversized request
//! lines must answer every one with a typed error — and never panic, never wedge a
//! shard, never leave a line unanswered.
//!
//! The property test drives one shared server (a `static OnceLock`, because the
//! offline proptest stub generates whole test functions and cannot capture locals)
//! with deterministic mutations derived from a seeded RNG; after every malformed
//! line the same connection must still answer `ping`.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::sync::OnceLock;
use std::time::Duration;

use proptest::prelude::*;
use rechisel_serve::client::Client;
use rechisel_serve::json::Json;
use rechisel_serve::server::{Server, ServerConfig, ServerHandle};

const MAX_LINE_BYTES: usize = 4096;

/// One shared robustness-target server for the whole test binary.
fn server() -> &'static ServerHandle {
    static SERVER: OnceLock<ServerHandle> = OnceLock::new();
    SERVER.get_or_init(|| {
        Server::start(ServerConfig {
            max_line_bytes: MAX_LINE_BYTES,
            shards: 2,
            ..ServerConfig::default()
        })
        .expect("robustness server starts")
    })
}

fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// A deterministic malformed line: never blank, never containing a newline,
/// always under the server's line ceiling.
fn malformed_line(seed: u64) -> String {
    let mut state = seed;
    let valid = r#"{"id":7,"op":"run_session","case":"hdlbits/vector5","max_iterations":2}"#;
    let line = match splitmix(&mut state) % 8 {
        // Printable garbage that is not JSON at all.
        0 => {
            let len = 1 + (splitmix(&mut state) % 64) as usize;
            (0..len)
                .map(|_| char::from(b'!' + (splitmix(&mut state) % 90) as u8))
                .collect::<String>()
        }
        // A valid request truncated mid-token.
        1 => {
            let cut = 1 + (splitmix(&mut state) as usize) % (valid.len() - 1);
            valid[..cut].to_string()
        }
        // Valid JSON of the wrong shape.
        2 => "[1,2,3]".into(),
        3 => "\"just a string\"".into(),
        4 => r#"{"id":7}"#.into(),
        // Unknown / mistyped fields.
        5 => r#"{"id":7,"op":"frobnicate"}"#.into(),
        6 => r#"{"id":"seven","op":42}"#.into(),
        // Structurally broken nesting.
        _ => {
            let depth = 1 + (splitmix(&mut state) % 64) as usize;
            "{\"a\":".repeat(depth)
        }
    };
    assert!(!line.trim().is_empty() && !line.contains('\n') && line.len() < MAX_LINE_BYTES);
    line
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every malformed line gets one typed error reply, and the connection (and the
    /// shard behind it) keeps serving afterwards.
    #[test]
    fn malformed_lines_get_typed_errors_and_never_wedge_the_server(seed in 0u64..1_000_000) {
        let mut client = Client::connect(server().addr()).expect("connect");
        let line = malformed_line(seed);
        let reply = client.send_raw_line(&line).expect("a reply line always comes back");
        prop_assert_eq!(
            reply.get("ok").and_then(Json::as_bool),
            Some(false),
            "malformed input `{}` must be rejected, got {}",
            line,
            reply.encode()
        );
        let kind = reply
            .get("error")
            .and_then(|e| e.get("kind"))
            .and_then(Json::as_str)
            .unwrap_or_default()
            .to_string();
        prop_assert!(
            matches!(kind.as_str(), "bad_request" | "oversized"),
            "unexpected error kind `{}` for `{}`",
            kind,
            line
        );
        // The same connection still serves — no shard wedged, no state corrupted.
        client.ping().expect("server still serving after malformed line");
    }
}

#[test]
fn oversized_lines_get_a_typed_reply_and_the_connection_survives() {
    let mut client = Client::connect(server().addr()).expect("connect");
    let huge = format!(r#"{{"id":1,"op":"ping","pad":"{}"}}"#, "x".repeat(2 * MAX_LINE_BYTES));
    let reply = client.send_raw_line(&huge).expect("typed reply");
    assert_eq!(reply.get("ok").and_then(Json::as_bool), Some(false));
    assert_eq!(
        reply.get("error").and_then(|e| e.get("kind")).and_then(Json::as_str),
        Some("oversized")
    );
    // The remainder of the oversized line is discarded up to its newline; the
    // connection then resumes normal framing.
    client.ping().expect("connection survives an oversized line");
}

#[test]
fn blank_lines_are_skipped_not_answered() {
    // Empty lines produce no reply at all, so this is proved with raw framing: the
    // first reply line on the wire answers the first real request.
    let mut raw = TcpStream::connect(server().addr()).expect("connect raw");
    raw.write_all(b"\n\r\n{\"id\":3,\"op\":\"ping\"}\n").expect("write");
    let mut reader = BufReader::new(raw.try_clone().expect("clone"));
    let mut line = String::new();
    reader.read_line(&mut line).expect("read");
    let reply = rechisel_serve::json::parse(line.trim_end()).expect("json reply");
    assert_eq!(reply.get("id").and_then(Json::as_u64), Some(3), "empty lines produce no replies");
    assert_eq!(reply.get("ok").and_then(Json::as_bool), Some(true));

    // Whitespace-only is NOT blank: it is a malformed request and gets a typed,
    // id-less rejection.
    raw.write_all(b"   \n").expect("write");
    line.clear();
    reader.read_line(&mut line).expect("read");
    let reply = rechisel_serve::json::parse(line.trim_end()).expect("json reply");
    assert_eq!(reply.get("ok").and_then(Json::as_bool), Some(false));
    assert_eq!(
        reply.get("error").and_then(|e| e.get("kind")).and_then(Json::as_str),
        Some("bad_request")
    );
}

#[test]
fn stalled_partial_lines_time_out_with_a_typed_reply() {
    // A dedicated server with an aggressive read deadline.
    let handle = Server::start(ServerConfig {
        read_timeout: Duration::from_millis(200),
        ..ServerConfig::default()
    })
    .expect("server starts");

    let mut raw = TcpStream::connect(handle.addr()).expect("connect");
    raw.set_read_timeout(Some(Duration::from_secs(10))).expect("timeout");
    // First byte starts the per-line deadline; then the line never completes.
    raw.write_all(b"{\"id\":9,\"op\":\"pi").expect("partial write");

    let mut reader = BufReader::new(raw.try_clone().expect("clone"));
    let mut line = String::new();
    reader.read_line(&mut line).expect("timeout reply arrives");
    let reply = rechisel_serve::json::parse(line.trim_end()).expect("json reply");
    assert_eq!(reply.get("ok").and_then(Json::as_bool), Some(false));
    assert_eq!(
        reply.get("error").and_then(|e| e.get("kind")).and_then(Json::as_str),
        Some("timeout")
    );
    // The server closes the connection after a timeout: EOF, not a hang.
    let mut rest = Vec::new();
    let n = reader.read_to_end(&mut rest).expect("EOF after timeout reply");
    assert_eq!(n, 0, "connection closed after the timeout reply");
    handle.shutdown();
}
