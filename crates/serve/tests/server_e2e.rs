//! End-to-end tests of the serve subsystem: real TCP server, real clients.
//!
//! The headline property (PR acceptance): two clients submitting the same suite
//! case concurrently both receive the streamed `RunEvent`s of their session, those
//! events are **identical** to a direct in-process `Session` run with a
//! `CollectingObserver`, and the shared artifact cache records the second compile
//! as a hit. Around it: busy backpressure with nothing dropped, graceful shutdown
//! draining in-flight jobs, and the stats surface.

use std::time::Duration;

use rechisel_benchsuite::case::BenchmarkCase;
use rechisel_benchsuite::runner::run_sample_with_engine;
use rechisel_benchsuite::suite::full_suite;
use rechisel_core::{CollectingObserver, Engine, RunEvent, WorkflowConfig, WorkflowResult};
use rechisel_llm::{Language, ModelProfile};
use rechisel_serve::client::{Client, ClientError, SessionRequest};
use rechisel_serve::server::{Server, ServerConfig};
use rechisel_sim::EngineKind;

/// The paper's case-study circuit — first case of the suite, present in every build.
const CASE_ID: &str = "hdlbits/vector5";
const MAX_ITERATIONS: u32 = 3;

fn suite_case(id: &str) -> BenchmarkCase {
    full_suite().into_iter().find(|c| c.id == id).unwrap_or_else(|| panic!("no case {id}"))
}

/// Runs the case in process exactly as the server does, capturing events.
fn direct_run(case: &BenchmarkCase, sample: u32) -> (WorkflowResult, Vec<RunEvent>) {
    let observer = CollectingObserver::new();
    let engine = Engine::builder()
        .config(WorkflowConfig::paper_default().with_max_iterations(MAX_ITERATIONS))
        .sim_engine(EngineKind::Compiled)
        .observer(observer.clone())
        .build();
    let result =
        run_sample_with_engine(&engine, case, &ModelProfile::gpt4o(), Language::Chisel, sample);
    (result, observer.take())
}

#[test]
fn two_concurrent_clients_stream_parity_events_and_share_one_compile() {
    let handle = Server::start(ServerConfig::default()).expect("server starts");
    let addr = handle.addr();

    // The reference answer, computed without any server involved.
    let case = suite_case(CASE_ID);
    let (expected_result, expected_events) = direct_run(&case, 0);
    assert!(!expected_events.is_empty(), "a session always emits events");

    // Two clients submit the same (case, sample) concurrently.
    let outcomes: Vec<_> = std::thread::scope(|scope| {
        let workers: Vec<_> = (0..2)
            .map(|_| {
                scope.spawn(move || {
                    let mut client = Client::connect(addr).expect("connect");
                    client.run_session(
                        &SessionRequest::new(CASE_ID).sample(0).max_iterations(MAX_ITERATIONS),
                    )
                })
            })
            .collect();
        workers.into_iter().map(|w| w.join().expect("client thread")).collect()
    });

    for outcome in outcomes {
        let outcome = outcome.expect("session ran");
        // Byte-for-byte event parity with the in-process run: same kinds, same
        // spec/attempt attribution, same order.
        assert_eq!(outcome.events, expected_events, "streamed events match the direct run");
        assert_eq!(outcome.success, expected_result.success);
        assert_eq!(outcome.success_iteration, expected_result.success_iteration);
        assert_eq!(outcome.iterations as usize, expected_result.statuses.len());
        assert_eq!(outcome.escapes, u64::from(expected_result.escapes));
    }

    // One circuit, two concurrent sessions: exactly one cold compile, and the
    // second request was a hit (an in-flight waiter counts as a hit).
    let cache = handle.cache_stats();
    assert_eq!(cache.misses, 1, "one cold compile for the shared circuit");
    assert!(cache.hits >= 1, "second compile was a cache hit (stats: {cache:?})");
    assert_eq!(cache.entries, 1);

    let stats = handle.stats();
    assert_eq!(stats.sessions, 2);
    assert_eq!(stats.busy, 0);
    handle.shutdown();
}

#[test]
fn oversubmitted_tiny_queues_reply_busy_but_never_drop_a_request() {
    let config = ServerConfig { shards: 1, queue_capacity: 1, ..ServerConfig::default() };
    let handle = Server::start(config).expect("server starts");

    let mut client = Client::connect(handle.addr()).expect("connect");
    let requests = 12;
    let mut ids = Vec::new();
    for sample in 0..requests {
        let req = SessionRequest::new(CASE_ID).sample(sample).max_iterations(1);
        ids.push(client.start_session(&req).expect("send"));
    }
    let outcomes = client.drain_sessions(&ids).expect("every request gets a terminal reply");
    assert_eq!(outcomes.len(), requests as usize, "no request dropped without a reply");

    let mut ok = 0u32;
    let mut busy = 0u32;
    for (_, outcome) in outcomes {
        match outcome {
            Ok(_) => ok += 1,
            Err(e) if e.is_busy() => busy += 1,
            Err(e) => panic!("unexpected error under over-submit: {e:?}"),
        }
    }
    assert!(ok >= 1, "the worker made progress");
    assert!(busy >= 1, "backpressure engaged on a 1×1 queue under {requests} pipelined jobs");
    assert_eq!(handle.stats().busy, u64::from(busy));
    handle.shutdown();
}

#[test]
fn graceful_shutdown_drains_in_flight_sessions() {
    let config = ServerConfig { shards: 2, queue_capacity: 64, ..ServerConfig::default() };
    let handle = Server::start(config).expect("server starts");

    let mut client = Client::connect(handle.addr()).expect("connect");
    let mut ids = Vec::new();
    for sample in 0..6 {
        let req = SessionRequest::new(CASE_ID).sample(sample).max_iterations(2);
        ids.push(client.start_session(&req).expect("send"));
    }

    // A second client asks the server to stop while those six are in flight.
    let mut admin = Client::connect(handle.addr()).expect("connect admin");
    admin.shutdown_server().expect("shutdown acknowledged");
    assert!(handle.shutdown_requested());
    handle.shutdown();

    // Every accepted job was drained to a terminal reply before the socket closed.
    let outcomes = client.drain_sessions(&ids).expect("drained replies survive shutdown");
    assert_eq!(outcomes.len(), 6);
    for (id, outcome) in outcomes {
        match outcome {
            Ok(session) => assert!(!session.events.is_empty(), "id {id} streamed events"),
            Err(ClientError::Server { kind, .. }) => {
                assert_eq!(kind, "shutting_down", "id {id}: only a typed late-reject is allowed")
            }
            Err(other) => panic!("id {id} dropped: {other:?}"),
        }
    }
}

#[test]
fn requests_after_shutdown_get_a_typed_shutting_down_reply() {
    let handle = Server::start(ServerConfig::default()).expect("server starts");
    let mut client = Client::connect(handle.addr()).expect("connect");
    client.shutdown_server().expect("shutdown acknowledged");

    // The reader thread is still draining this connection; a heavy op submitted
    // after the flag flips is rejected with a typed error, not silence.
    let err = client
        .run_session(&SessionRequest::new(CASE_ID).max_iterations(1))
        .expect_err("rejected during shutdown");
    match err {
        ClientError::Server { kind, .. } => assert_eq!(kind, "shutting_down"),
        // The acceptor may already have closed the socket: equally a reply-or-close,
        // never a hang.
        ClientError::Io(_) | ClientError::Protocol(_) => {}
    }
    handle.shutdown();
}

#[test]
fn stats_surface_reports_cache_and_server_counters() {
    let handle = Server::start(ServerConfig::default()).expect("server starts");
    let mut client = Client::connect(handle.addr()).expect("connect");

    client.ping().expect("ping");
    let cold = client.compile(CASE_ID).expect("compile");
    assert!(!cold.cached);
    assert!(!cold.fingerprint.is_empty());
    assert!(cold.verilog_bytes > 0);
    let warm = client.compile(CASE_ID).expect("compile again");
    assert!(warm.cached, "second compile was a hit");
    assert_eq!(warm.fingerprint, cold.fingerprint);

    let sim = client.simulate(CASE_ID).expect("simulate");
    assert!(sim.passed, "the reference passes its own testbench");
    assert!(sim.points > 0);

    let stats = client.stats().expect("stats");
    assert!(stats.cache_hits() >= 1, "stats: {stats:?}");
    assert_eq!(stats.cache_misses(), 1);
    assert!(stats.cache_hit_rate() > 0.0);
    assert_eq!(stats.server_busy(), 0);
    handle.shutdown();
}

#[test]
fn unknown_case_and_model_are_typed_errors() {
    let handle = Server::start(ServerConfig::default()).expect("server starts");
    let mut client = Client::connect(handle.addr()).expect("connect");

    match client.compile("no/such/case") {
        Err(ClientError::Server { kind, .. }) => assert_eq!(kind, "unknown_case"),
        other => panic!("expected unknown_case, got {other:?}"),
    }
    match client.run_session(&SessionRequest::new(CASE_ID).model("gpt-9000")) {
        Err(ClientError::Server { kind, .. }) => assert_eq!(kind, "unknown_model"),
        other => panic!("expected unknown_model, got {other:?}"),
    }
    // The connection survives typed rejections.
    client.ping().expect("still serving");
    handle.shutdown();

    // Retry timeout path: a loopback port that was just released refuses connects
    // until the deadline passes.
    let vacant = std::net::TcpListener::bind("127.0.0.1:0").expect("bind");
    let vacant_addr = vacant.local_addr().expect("addr");
    drop(vacant);
    assert!(Client::connect_with_retry(vacant_addr, Duration::from_millis(200)).is_err());
}
