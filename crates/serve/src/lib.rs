//! # rechisel-serve
//!
//! The serving layer of the ReChisel reproduction: compile / simulate /
//! run-session over a newline-delimited JSON line protocol on TCP, built entirely
//! on `std` (no async runtime, no HTTP library — the workspace is offline by
//! design).
//!
//! Pieces:
//!
//! * [`server`] — the [`Server`]: acceptor + per-connection reader
//!   threads + a fixed worker-shard pool over bounded work-stealing [`queue`]s,
//!   with typed `busy` backpressure and graceful drain on shutdown.
//! * A shared content-addressed [`ArtifactCache`] attached to every suite case,
//!   keyed on the circuit [`Fingerprint`](rechisel_firrtl::Fingerprint) —
//!   concurrent requests for one design share one compilation.
//! * [`server::WireObserver`] — the `Observer` seam from `rechisel_core::engine`
//!   pointed at a socket: session run events stream to the client live.
//! * [`client`] — the blocking [`Client`] used by the integration
//!   tests and the `rechisel-load` generator binary.
//! * [`wire`] / [`json`] — the protocol reference: request/reply/event encoding
//!   over a hand-rolled JSON parser.
//!
//! # Quickstart
//!
//! ```
//! use rechisel_serve::client::{Client, SessionRequest};
//! use rechisel_serve::server::{Server, ServerConfig};
//!
//! let handle = Server::start(ServerConfig::default()).unwrap();
//! let mut client = Client::connect(handle.addr()).unwrap();
//! client.ping().unwrap();
//!
//! let compiled = client.compile("hdlbits/vector5").unwrap();
//! assert!(!compiled.cached, "first compile is cold");
//! assert!(client.compile("hdlbits/vector5").unwrap().cached, "second is a hit");
//!
//! let outcome =
//!     client.run_session(&SessionRequest::new("hdlbits/vector5").max_iterations(2)).unwrap();
//! assert!(!outcome.events.is_empty(), "events streamed during the run");
//! handle.shutdown();
//! ```

#![warn(missing_docs)]

pub mod client;
pub mod json;
pub mod queue;
pub mod server;
pub mod wire;

pub use client::{Client, ClientError, DrainedSessions, SessionOutcome, SessionRequest};
pub use rechisel_core::{ArtifactCache, CacheStats, CircuitArtifacts};
pub use server::{Server, ServerConfig, ServerHandle, ServerStats, WireObserver};
pub use wire::{ErrorKind, Op, Request};
