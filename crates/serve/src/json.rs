//! A minimal hand-rolled JSON value, parser and serializer.
//!
//! The wire protocol is newline-delimited JSON, and the workspace deliberately has
//! no real serde (the `vendor/serde` stub is a no-op marker crate) — so the serving
//! layer carries its own ~200-line recursive-descent implementation. It supports
//! the full JSON grammar (objects, arrays, strings with escapes incl. `\uXXXX`,
//! numbers, booleans, null) with a nesting-depth limit so a hostile request line
//! cannot blow the stack.
//!
//! Numbers are kept as `f64`; every quantity the protocol carries (ids, iteration
//! counts, byte sizes) fits in the 53-bit exact-integer range.

use std::collections::BTreeMap;
use std::fmt;

/// Maximum nesting depth the parser accepts. Protocol messages are at most a few
/// levels deep; anything deeper is hostile or corrupt.
const MAX_DEPTH: usize = 32;

/// A parsed JSON value.
///
/// Objects use a `BTreeMap` so serialization order is deterministic — handy for
/// tests that compare encoded lines byte for byte.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object.
    Obj(BTreeMap<String, Json>),
}

impl Json {
    /// Builds an object from key/value pairs.
    pub fn obj(pairs: impl IntoIterator<Item = (&'static str, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Object field access; `None` on non-objects and missing keys.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(map) => map.get(key),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The numeric payload as a `u64` (must be a non-negative exact integer).
    pub fn as_u64(&self) -> Option<u64> {
        let n = self.as_f64()?;
        if n >= 0.0 && n.fract() == 0.0 && n <= 2f64.powi(53) {
            Some(n as u64)
        } else {
            None
        }
    }

    /// The boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The array payload, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Serializes to a single-line string (no trailing newline).
    pub fn encode(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(true) => out.push_str("true"),
            Json::Bool(false) => out.push_str("false"),
            Json::Num(n) => {
                if n.fract() == 0.0 && n.abs() < 2f64.powi(53) {
                    out.push_str(&format!("{}", *n as i64));
                } else {
                    out.push_str(&format!("{n}"));
                }
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(map) => {
                out.push('{');
                for (i, (key, value)) in map.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(out, key);
                    out.push(':');
                    value.write(out);
                }
                out.push('}');
            }
        }
    }
}

impl From<&str> for Json {
    fn from(s: &str) -> Self {
        Json::Str(s.to_string())
    }
}

impl From<String> for Json {
    fn from(s: String) -> Self {
        Json::Str(s)
    }
}

impl From<bool> for Json {
    fn from(b: bool) -> Self {
        Json::Bool(b)
    }
}

impl From<u64> for Json {
    fn from(n: u64) -> Self {
        Json::Num(n as f64)
    }
}

impl From<u32> for Json {
    fn from(n: u32) -> Self {
        Json::Num(f64::from(n))
    }
}

impl From<usize> for Json {
    fn from(n: usize) -> Self {
        Json::Num(n as f64)
    }
}

impl From<f64> for Json {
    fn from(n: f64) -> Self {
        Json::Num(n)
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A parse failure, with a byte offset for diagnostics.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// What went wrong.
    pub message: String,
    /// Byte offset in the input where it went wrong.
    pub offset: usize,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} at byte {}", self.message, self.offset)
    }
}

impl std::error::Error for JsonError {}

/// Parses exactly one JSON value, rejecting trailing garbage.
pub fn parse(input: &str) -> Result<Json, JsonError> {
    let mut p = Parser { bytes: input.as_bytes(), pos: 0 };
    p.skip_ws();
    let value = p.value(0)?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after JSON value"));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: &str) -> JsonError {
        JsonError { message: message.to_string(), offset: self.pos }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        Some(b)
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.bump() == Some(b) {
            Ok(())
        } else {
            self.pos = self.pos.saturating_sub(1);
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, lit: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(value)
        } else {
            Err(self.err(&format!("invalid literal (expected `{lit}`)")))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, JsonError> {
        if depth > MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        match self.peek() {
            Some(b'{') => self.object(depth),
            Some(b'[') => self.array(depth),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn object(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value(depth + 1)?;
            map.insert(key, value);
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b'}') => return Ok(Json::Obj(map)),
                _ => {
                    self.pos = self.pos.saturating_sub(1);
                    return Err(self.err("expected ',' or '}' in object"));
                }
            }
        }
    }

    fn array(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b']') => return Ok(Json::Arr(items)),
                _ => {
                    self.pos = self.pos.saturating_sub(1);
                    return Err(self.err("expected ',' or ']' in array"));
                }
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.bump() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => return Ok(out),
                Some(b'\\') => match self.bump() {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'b') => out.push('\u{0008}'),
                    Some(b'f') => out.push('\u{000c}'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'u') => out.push(self.unicode_escape()?),
                    _ => return Err(self.err("invalid escape")),
                },
                Some(b) if b < 0x20 => return Err(self.err("raw control character in string")),
                Some(b) => {
                    // Re-decode UTF-8 starting at this byte: the input is a &str, so
                    // the byte sequence is valid; find the char it starts.
                    let start = self.pos - 1;
                    let mut end = self.pos;
                    while end < self.bytes.len() && (self.bytes[end] & 0xC0) == 0x80 {
                        end += 1;
                    }
                    let s = std::str::from_utf8(&self.bytes[start..end])
                        .map_err(|_| self.err("invalid UTF-8"))?;
                    out.push_str(s);
                    self.pos = end;
                    let _ = b;
                }
            }
        }
    }

    fn unicode_escape(&mut self) -> Result<char, JsonError> {
        let hex4 = |p: &mut Self| -> Result<u32, JsonError> {
            let mut v = 0u32;
            for _ in 0..4 {
                let b = p.bump().ok_or_else(|| p.err("truncated \\u escape"))?;
                let d = (b as char).to_digit(16).ok_or_else(|| p.err("invalid \\u escape"))?;
                v = v * 16 + d;
            }
            Ok(v)
        };
        let first = hex4(self)?;
        // Surrogate pair handling for non-BMP characters.
        if (0xD800..0xDC00).contains(&first) {
            if self.bump() != Some(b'\\') || self.bump() != Some(b'u') {
                return Err(self.err("unpaired surrogate"));
            }
            let second = hex4(self)?;
            if !(0xDC00..0xE000).contains(&second) {
                return Err(self.err("invalid low surrogate"));
            }
            let code = 0x10000 + ((first - 0xD800) << 10) + (second - 0xDC00);
            char::from_u32(code).ok_or_else(|| self.err("invalid surrogate pair"))
        } else if (0xDC00..0xE000).contains(&first) {
            Err(self.err("unpaired low surrogate"))
        } else {
            char::from_u32(first).ok_or_else(|| self.err("invalid \\u escape"))
        }
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        text.parse::<f64>()
            .ok()
            .filter(|n| n.is_finite())
            .map(Json::Num)
            .ok_or_else(|| self.err("invalid number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_protocol_shaped_messages() {
        let line = r#"{"op":"run_session","id":7,"case":"hdlbits/vector5","sample":0}"#;
        let value = parse(line).unwrap();
        assert_eq!(value.get("op").and_then(Json::as_str), Some("run_session"));
        assert_eq!(value.get("id").and_then(Json::as_u64), Some(7));
        assert_eq!(parse(&value.encode()).unwrap(), value);
    }

    #[test]
    fn parses_nested_values_and_escapes() {
        let value =
            parse(r#"{"a":[1,2.5,-3e2,true,false,null],"s":"q\"\\\n\u0041\u00e9"}"#).unwrap();
        let arr = value.get("a").and_then(Json::as_arr).unwrap();
        assert_eq!(arr.len(), 6);
        assert_eq!(arr[2], Json::Num(-300.0));
        assert_eq!(value.get("s").and_then(Json::as_str), Some("q\"\\\nAé"));
    }

    #[test]
    fn surrogate_pairs_decode() {
        assert_eq!(parse(r#""\ud83d\ude00""#).unwrap(), Json::Str("😀".into()));
        assert!(parse(r#""\ud83d""#).is_err(), "unpaired high surrogate");
        assert!(parse(r#""\ude00""#).is_err(), "unpaired low surrogate");
    }

    #[test]
    fn rejects_malformed_inputs() {
        for bad in [
            "",
            "{",
            "}",
            "[1,",
            "{\"a\"}",
            "{\"a\":}",
            "nul",
            "tru",
            "+1",
            "1.2.3",
            "\"abc",
            "\"\\x\"",
            "{\"a\":1}extra",
            "[1 2]",
            "--1",
            "1e",
            "Infinity",
            "NaN",
        ] {
            assert!(parse(bad).is_err(), "input {bad:?} must fail");
        }
    }

    #[test]
    fn rejects_excessive_nesting() {
        let deep = "[".repeat(100) + &"]".repeat(100);
        assert!(parse(&deep).is_err());
        let ok = "[".repeat(MAX_DEPTH) + &"]".repeat(MAX_DEPTH);
        assert!(parse(&ok).is_ok());
    }

    #[test]
    fn integers_encode_without_fraction() {
        assert_eq!(Json::Num(42.0).encode(), "42");
        assert_eq!(Json::Num(1.5).encode(), "1.5");
        assert_eq!(Json::from(0u64).encode(), "0");
    }

    #[test]
    fn object_encoding_is_deterministic() {
        let a = Json::obj([("b", Json::from(1u64)), ("a", Json::from(2u64))]);
        assert_eq!(a.encode(), r#"{"a":2,"b":1}"#);
    }

    #[test]
    fn control_characters_escape_on_encode() {
        assert_eq!(Json::Str("\u{0001}".into()).encode(), r#""\u0001""#);
        assert_eq!(
            parse(&Json::Str("\u{0001}".into()).encode()).unwrap(),
            Json::Str("\u{0001}".into())
        );
    }
}
