//! `rechisel-load` — deterministic load generator for `rechisel-serve`.
//!
//! Spawns N concurrent clients that drive `run_session` (or `compile`/`simulate`)
//! requests against a server, in closed loop (next request after the previous
//! reply) or open loop (each client pipelines all its requests, then drains the
//! interleaved replies). Case/sample choice is derived from `--seed`, so a run is
//! reproducible. Every request is accounted for: a terminal reply (ok, busy or
//! typed error) must arrive for each, and any transport/protocol failure fails
//! the run.
//!
//! ```text
//! rechisel-load --addr HOST:PORT [--clients N] [--sessions N] [--mode closed|open]
//!               [--op run_session|compile|simulate] [--cases N] [--seed N]
//!               [--max-iterations N] [--model NAME]
//!               [--expect-min-inflight N] [--expect-busy] [--expect-zero-errors]
//!               [--expect-hit-rate-above F] [--shutdown-server]
//! ```
//!
//! Exit status: 0 when every `--expect-*` assertion holds (and no request was
//! dropped), 1 otherwise.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Barrier};
use std::time::{Duration, Instant};

use rechisel_serve::client::{Client, ClientError, SessionRequest};

#[derive(Debug, Clone)]
struct Options {
    addr: String,
    clients: usize,
    sessions: usize,
    open_loop: bool,
    op: String,
    cases: usize,
    seed: u64,
    max_iterations: u32,
    model: Option<String>,
    expect_min_inflight: Option<u64>,
    expect_busy: bool,
    expect_zero_errors: bool,
    expect_hit_rate_above: Option<f64>,
    shutdown_server: bool,
}

impl Default for Options {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:4547".into(),
            clients: 8,
            sessions: 4,
            open_loop: false,
            op: "run_session".into(),
            cases: 8,
            seed: 42,
            max_iterations: 2,
            model: None,
            expect_min_inflight: None,
            expect_busy: false,
            expect_zero_errors: false,
            expect_hit_rate_above: None,
            shutdown_server: false,
        }
    }
}

fn usage() -> ! {
    eprintln!(
        "usage: rechisel-load --addr HOST:PORT [--clients N] [--sessions N] \
         [--mode closed|open] [--op run_session|compile|simulate] [--cases N] [--seed N] \
         [--max-iterations N] [--model NAME] [--expect-min-inflight N] [--expect-busy] \
         [--expect-zero-errors] [--expect-hit-rate-above F] [--shutdown-server]"
    );
    std::process::exit(2);
}

fn parse_args() -> Options {
    let mut opts = Options::default();
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut value = |name: &str| {
            args.next().unwrap_or_else(|| {
                eprintln!("missing value for {name}");
                usage()
            })
        };
        match flag.as_str() {
            "--addr" => opts.addr = value("--addr"),
            "--clients" => opts.clients = num(&value("--clients"), "--clients"),
            "--sessions" => opts.sessions = num(&value("--sessions"), "--sessions"),
            "--mode" => match value("--mode").as_str() {
                "closed" => opts.open_loop = false,
                "open" => opts.open_loop = true,
                other => {
                    eprintln!("unknown mode `{other}`");
                    usage()
                }
            },
            "--op" => opts.op = value("--op"),
            "--cases" => opts.cases = num(&value("--cases"), "--cases"),
            "--seed" => opts.seed = num(&value("--seed"), "--seed"),
            "--max-iterations" => {
                opts.max_iterations = num(&value("--max-iterations"), "--max-iterations")
            }
            "--model" => opts.model = Some(value("--model")),
            "--expect-min-inflight" => {
                opts.expect_min_inflight =
                    Some(num(&value("--expect-min-inflight"), "--expect-min-inflight"))
            }
            "--expect-busy" => opts.expect_busy = true,
            "--expect-zero-errors" => opts.expect_zero_errors = true,
            "--expect-hit-rate-above" => {
                opts.expect_hit_rate_above =
                    Some(num(&value("--expect-hit-rate-above"), "--expect-hit-rate-above"))
            }
            "--shutdown-server" => opts.shutdown_server = true,
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown flag {other}");
                usage()
            }
        }
    }
    if !matches!(opts.op.as_str(), "run_session" | "compile" | "simulate") {
        eprintln!("unknown op `{}`", opts.op);
        usage();
    }
    if opts.open_loop && opts.op != "run_session" {
        eprintln!("--mode open supports only --op run_session");
        usage();
    }
    opts
}

fn num<T: std::str::FromStr>(text: &str, flag: &str) -> T {
    text.parse().unwrap_or_else(|_| {
        eprintln!("invalid value `{text}` for {flag}");
        usage()
    })
}

/// splitmix64: the deterministic per-request RNG (same algorithm as the vendored
/// rand stub, re-rolled here so the binary does not depend on it).
fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Shared tallies across client threads.
#[derive(Default)]
struct Tally {
    sent: AtomicU64,
    replied: AtomicU64,
    ok: AtomicU64,
    busy: AtomicU64,
    server_errors: AtomicU64,
    transport_errors: AtomicU64,
    events: AtomicU64,
    inflight: AtomicU64,
    inflight_high_water: AtomicU64,
}

impl Tally {
    fn inflight_up(&self) {
        let now = self.inflight.fetch_add(1, Ordering::Relaxed) + 1;
        self.inflight_high_water.fetch_max(now, Ordering::Relaxed);
    }

    fn inflight_down(&self) {
        self.inflight.fetch_sub(1, Ordering::Relaxed);
    }
}

fn main() {
    let opts = parse_args();
    let case_pool: Vec<String> = rechisel_benchsuite_case_ids(opts.cases);
    if case_pool.is_empty() {
        eprintln!("rechisel-load: empty case pool");
        std::process::exit(1);
    }

    let tally = Arc::new(Tally::default());
    // Barrier 1: every client connected and committed before anyone sends.
    // Barrier 2 (open loop only): every client finished sending before anyone
    // reads a terminal reply — at that instant ALL requests are in flight, which
    // makes the `--expect-min-inflight` measurement deterministic.
    let start = Arc::new(Barrier::new(opts.clients));
    let sent_all = Arc::new(Barrier::new(opts.clients));
    let latencies = Arc::new(std::sync::Mutex::new(Vec::<Duration>::new()));

    let began = Instant::now();
    let threads: Vec<_> = (0..opts.clients)
        .map(|client_index| {
            let opts = opts.clone();
            let tally = Arc::clone(&tally);
            let start = Arc::clone(&start);
            let sent_all = Arc::clone(&sent_all);
            let latencies = Arc::clone(&latencies);
            let case_pool = case_pool.clone();
            std::thread::spawn(move || {
                client_thread(
                    client_index,
                    &opts,
                    &case_pool,
                    &tally,
                    &start,
                    &sent_all,
                    &latencies,
                )
            })
        })
        .collect();
    for thread in threads {
        if thread.join().is_err() {
            tally.transport_errors.fetch_add(1, Ordering::Relaxed);
        }
    }
    let elapsed = began.elapsed();

    // Server-side view, plus optional shutdown.
    let (hit_rate, server_busy, server_high_water, server_sessions) =
        match Client::connect_with_retry(opts.addr.as_str(), Duration::from_secs(5)) {
            Ok(mut client) => {
                let stats = client.stats().ok();
                if opts.shutdown_server {
                    let _ = client.shutdown_server();
                }
                match stats {
                    Some(s) => {
                        (s.cache_hit_rate(), s.server_busy(), s.jobs_high_water(), s.sessions())
                    }
                    None => (0.0, 0, 0, 0),
                }
            }
            Err(_) => (0.0, 0, 0, 0),
        };

    let sent = tally.sent.load(Ordering::Relaxed);
    let replied = tally.replied.load(Ordering::Relaxed);
    let ok = tally.ok.load(Ordering::Relaxed);
    let busy = tally.busy.load(Ordering::Relaxed);
    let server_errors = tally.server_errors.load(Ordering::Relaxed);
    let transport_errors = tally.transport_errors.load(Ordering::Relaxed);
    let events = tally.events.load(Ordering::Relaxed);
    let high_water = tally.inflight_high_water.load(Ordering::Relaxed);

    let mut lat = latencies.lock().expect("latency list").clone();
    lat.sort_unstable();
    let pct = |p: f64| -> Duration {
        if lat.is_empty() {
            return Duration::ZERO;
        }
        lat[(((lat.len() - 1) as f64) * p) as usize]
    };

    println!(
        "rechisel-load: {sent} sent, {replied} replied ({ok} ok, {busy} busy, \
         {server_errors} server errors, {transport_errors} transport errors), {events} events, \
         {:.1} req/s",
        replied as f64 / elapsed.as_secs_f64().max(1e-9)
    );
    println!(
        "rechisel-load: client in-flight high-water {high_water}, server high-water \
         {server_high_water}, server sessions {server_sessions}, server busy {server_busy}, \
         cache hit-rate {hit_rate:.3}, p50 {:?}, p99 {:?}",
        pct(0.50),
        pct(0.99)
    );

    let mut failed = false;
    let mut expect = |name: &str, pass: bool| {
        if !pass {
            eprintln!("rechisel-load: EXPECTATION FAILED: {name}");
            failed = true;
        }
    };
    expect("every request replied", replied == sent && transport_errors == 0);
    if let Some(min) = opts.expect_min_inflight {
        expect(&format!("in-flight high-water >= {min} (got {high_water})"), high_water >= min);
    }
    if opts.expect_busy {
        expect("at least one busy reply", busy + server_busy > 0);
    }
    if opts.expect_zero_errors {
        expect(
            &format!("zero errors (got {server_errors} server, {transport_errors} transport)"),
            server_errors == 0 && transport_errors == 0,
        );
    }
    if let Some(min) = opts.expect_hit_rate_above {
        expect(&format!("cache hit-rate > {min} (got {hit_rate:.3})"), hit_rate > min);
    }
    std::process::exit(if failed { 1 } else { 0 });
}

/// The first `count` suite case ids — the shared vocabulary with the server,
/// which loads the same suite.
fn rechisel_benchsuite_case_ids(count: usize) -> Vec<String> {
    rechisel_benchsuite::sampled_suite(count).into_iter().map(|case| case.id).collect()
}

#[allow(clippy::too_many_arguments)]
fn client_thread(
    client_index: usize,
    opts: &Options,
    case_pool: &[String],
    tally: &Tally,
    start: &Barrier,
    sent_all: &Barrier,
    latencies: &std::sync::Mutex<Vec<Duration>>,
) {
    let mut client = match Client::connect_with_retry(opts.addr.as_str(), Duration::from_secs(10)) {
        Ok(c) => c,
        Err(_) => {
            tally.transport_errors.fetch_add(1, Ordering::Relaxed);
            // Unblock the barriers for everyone else.
            start.wait();
            if opts.open_loop {
                sent_all.wait();
            }
            return;
        }
    };
    let mut rng = opts.seed ^ ((client_index as u64) << 32).wrapping_add(0x5bd1_e995);
    let requests: Vec<SessionRequest> = (0..opts.sessions)
        .map(|_| {
            let case = &case_pool[(splitmix(&mut rng) as usize) % case_pool.len()];
            let sample = (splitmix(&mut rng) % 8) as u32;
            let mut req = SessionRequest::new(case.clone())
                .sample(sample)
                .max_iterations(opts.max_iterations);
            if let Some(model) = &opts.model {
                req = req.model(model.clone());
            }
            req
        })
        .collect();

    start.wait();
    if opts.open_loop {
        // Send phase: pipeline every request, counting each as in flight.
        let mut ids = Vec::with_capacity(requests.len());
        for req in &requests {
            match client.start_session(req) {
                Ok(id) => {
                    ids.push(id);
                    tally.sent.fetch_add(1, Ordering::Relaxed);
                    tally.inflight_up();
                }
                Err(_) => {
                    tally.transport_errors.fetch_add(1, Ordering::Relaxed);
                }
            }
        }
        sent_all.wait();
        let drain_started = Instant::now();
        match client.drain_sessions(&ids) {
            Ok(outcomes) => {
                for (_, outcome) in outcomes {
                    tally.replied.fetch_add(1, Ordering::Relaxed);
                    tally.inflight_down();
                    latencies.lock().expect("latency list").push(drain_started.elapsed());
                    record_outcome(tally, outcome);
                }
            }
            Err(_) => {
                // Whatever did not get a terminal reply counts as dropped.
                tally.transport_errors.fetch_add(1, Ordering::Relaxed);
            }
        }
    } else {
        for req in &requests {
            tally.sent.fetch_add(1, Ordering::Relaxed);
            tally.inflight_up();
            let sent_at = Instant::now();
            let outcome: Result<(), ClientError> = match opts.op.as_str() {
                "compile" => client.compile(&req.case).map(|_| ()),
                "simulate" => client.simulate(&req.case).map(|_| ()),
                _ => match client.run_session(req) {
                    Ok(outcome) => {
                        tally.events.fetch_add(outcome.events.len() as u64, Ordering::Relaxed);
                        tally.replied.fetch_add(1, Ordering::Relaxed);
                        tally.ok.fetch_add(1, Ordering::Relaxed);
                        tally.inflight_down();
                        latencies.lock().expect("latency list").push(sent_at.elapsed());
                        continue;
                    }
                    Err(e) => Err(e),
                },
            };
            tally.inflight_down();
            latencies.lock().expect("latency list").push(sent_at.elapsed());
            match outcome {
                Ok(()) => {
                    tally.replied.fetch_add(1, Ordering::Relaxed);
                    tally.ok.fetch_add(1, Ordering::Relaxed);
                }
                Err(ClientError::Server { kind, .. }) => {
                    tally.replied.fetch_add(1, Ordering::Relaxed);
                    if kind == "busy" {
                        tally.busy.fetch_add(1, Ordering::Relaxed);
                    } else {
                        tally.server_errors.fetch_add(1, Ordering::Relaxed);
                    }
                }
                Err(_) => {
                    tally.transport_errors.fetch_add(1, Ordering::Relaxed);
                }
            }
        }
    }
}

fn record_outcome(tally: &Tally, outcome: Result<rechisel_serve::SessionOutcome, ClientError>) {
    match outcome {
        Ok(session) => {
            tally.ok.fetch_add(1, Ordering::Relaxed);
            tally.events.fetch_add(session.events.len() as u64, Ordering::Relaxed);
        }
        Err(ClientError::Server { kind, .. }) => {
            if kind == "busy" {
                tally.busy.fetch_add(1, Ordering::Relaxed);
            } else {
                tally.server_errors.fetch_add(1, Ordering::Relaxed);
            }
        }
        Err(_) => {
            tally.transport_errors.fetch_add(1, Ordering::Relaxed);
        }
    }
}
