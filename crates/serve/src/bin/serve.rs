//! `rechisel-serve` — run the experiment server until a client sends `shutdown`
//! (or the process receives SIGINT/SIGTERM, which the OS turns into process exit).
//!
//! ```text
//! rechisel-serve [--addr HOST:PORT] [--shards N] [--queue-capacity N]
//!                [--max-line-bytes N] [--read-timeout-ms N] [--cache-budget BYTES]
//! ```

use std::time::Duration;

use rechisel_serve::server::{Server, ServerConfig};

fn usage() -> ! {
    eprintln!(
        "usage: rechisel-serve [--addr HOST:PORT] [--shards N] [--queue-capacity N] \
         [--max-line-bytes N] [--read-timeout-ms N] [--cache-budget BYTES]"
    );
    std::process::exit(2);
}

fn main() {
    let mut config = ServerConfig { addr: "127.0.0.1:4547".into(), ..ServerConfig::default() };
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut value = |name: &str| {
            args.next().unwrap_or_else(|| {
                eprintln!("missing value for {name}");
                usage()
            })
        };
        match flag.as_str() {
            "--addr" => config.addr = value("--addr"),
            "--shards" => config.shards = parse_num(&value("--shards"), "--shards"),
            "--queue-capacity" => {
                config.queue_capacity = parse_num(&value("--queue-capacity"), "--queue-capacity")
            }
            "--max-line-bytes" => {
                config.max_line_bytes = parse_num(&value("--max-line-bytes"), "--max-line-bytes")
            }
            "--read-timeout-ms" => {
                config.read_timeout = Duration::from_millis(parse_num(
                    &value("--read-timeout-ms"),
                    "--read-timeout-ms",
                ))
            }
            "--cache-budget" => {
                config.cache_budget = parse_num(&value("--cache-budget"), "--cache-budget")
            }
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown flag {other}");
                usage()
            }
        }
    }

    let handle = match Server::start(config) {
        Ok(handle) => handle,
        Err(e) => {
            eprintln!("rechisel-serve: failed to start: {e}");
            std::process::exit(1);
        }
    };
    println!("rechisel-serve listening on {}", handle.addr());

    handle.wait_shutdown_requested();
    println!("rechisel-serve: shutdown requested, draining");
    let stats = handle.stats();
    let cache = handle.cache_stats();
    handle.shutdown();
    println!(
        "rechisel-serve: served {} requests ({} sessions, {} busy, {} errors); \
         cache {}/{} hits/misses ({} evictions)",
        stats.requests,
        stats.sessions,
        stats.busy,
        stats.errors,
        cache.hits,
        cache.misses,
        cache.evictions
    );
}

fn parse_num<T: std::str::FromStr>(text: &str, flag: &str) -> T {
    text.parse().unwrap_or_else(|_| {
        eprintln!("invalid value `{text}` for {flag}");
        usage()
    })
}
