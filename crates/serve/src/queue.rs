//! Bounded, sharded work queues with work-stealing.
//!
//! The server partitions heavy jobs across a fixed set of shard queues — one per
//! worker — keyed by a job hash, so same-case jobs tend to land on the same worker
//! (warm per-case caches). Each queue is bounded: when every shard is full,
//! [`WorkQueues::try_push`] fails and the caller sends a typed `Busy` reply —
//! backpressure instead of unbounded memory growth. Workers pop their own shard
//! first and **steal** from the others when idle, so a skewed key distribution
//! cannot strand work behind one busy shard.
//!
//! The implementation is condvar-based (`Mutex<VecDeque>` per shard) rather than
//! channel-based: `std::sync::mpsc` has no bounded try-send without a `sync_channel`
//! per shard, and stealing needs two-ended access anyway.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Condvar, Mutex};
use std::time::Duration;

/// How long an idle worker parks on its own shard before re-scanning for steals
/// and re-checking the closed flag.
const IDLE_PARK: Duration = Duration::from_millis(10);

struct Shard<T> {
    jobs: Mutex<VecDeque<T>>,
    ready: Condvar,
}

/// A fixed set of bounded FIFO queues with cross-shard stealing.
pub struct WorkQueues<T> {
    shards: Vec<Shard<T>>,
    capacity: usize,
    closed: AtomicBool,
}

impl<T> WorkQueues<T> {
    /// Creates `shards` queues of `capacity` jobs each.
    ///
    /// # Panics
    ///
    /// Panics when `shards` is zero or `capacity` is zero.
    pub fn new(shards: usize, capacity: usize) -> Self {
        assert!(shards > 0, "need at least one shard");
        assert!(capacity > 0, "need a non-zero queue capacity");
        Self {
            shards: (0..shards)
                .map(|_| Shard { jobs: Mutex::new(VecDeque::new()), ready: Condvar::new() })
                .collect(),
            capacity,
            closed: AtomicBool::new(false),
        }
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Enqueues on the hinted shard, spilling to the least-loaded other shard when
    /// the hint is full. Returns the job when every shard is full (the caller's
    /// backpressure signal) or when the queues are closed.
    pub fn try_push(&self, hint: usize, job: T) -> Result<(), T> {
        let n = self.shards.len();
        let mut job = Some(job);
        for offset in 0..n {
            let index = (hint + offset) % n;
            let shard = &self.shards[index];
            let mut jobs = shard.jobs.lock().expect("work queue poisoned");
            // The closed check happens under the shard lock (and `closed` is
            // SeqCst): a worker that observed `closed` before its final drain scan
            // can then never miss a concurrently pushed job — the push either
            // lands before that scan's lock acquisition or observes `closed` and
            // fails. Checked per shard so a close racing a multi-shard spill scan
            // cannot slip an insert in late.
            if self.closed.load(Ordering::SeqCst) {
                return Err(job.take().expect("job still owned"));
            }
            if jobs.len() < self.capacity {
                jobs.push_back(job.take().expect("job still owned"));
                drop(jobs);
                shard.ready.notify_one();
                return Ok(());
            }
        }
        Err(job.take().expect("job still owned"))
    }

    /// Jobs currently enqueued across all shards.
    pub fn depth(&self) -> usize {
        self.shards.iter().map(|s| s.jobs.lock().expect("work queue poisoned").len()).sum()
    }

    /// Pops a job for worker `own`: its own shard first, then a steal scan over the
    /// other shards, then a bounded park on its own condvar. Returns `None` only
    /// after [`close`](Self::close) once every shard is empty — workers drain
    /// in-flight work before exiting.
    pub fn pop(&self, own: usize) -> Option<T> {
        let n = self.shards.len();
        loop {
            // Observe `closed` BEFORE scanning: if it was already set, any push
            // that could still insert would itself observe `closed` under the
            // shard lock and fail, so an all-empty scan below is a safe exit.
            let was_closed = self.closed.load(Ordering::SeqCst);
            // Own shard first: cheap, and preserves the locality the hash gives us.
            {
                let mut jobs = self.shards[own % n].jobs.lock().expect("work queue poisoned");
                if let Some(job) = jobs.pop_front() {
                    return Some(job);
                }
            }
            // Steal scan, starting after our own shard for fairness.
            for offset in 1..n {
                let mut jobs =
                    self.shards[(own + offset) % n].jobs.lock().expect("work queue poisoned");
                if let Some(job) = jobs.pop_front() {
                    return Some(job);
                }
            }
            if was_closed {
                return None;
            }
            // Park briefly on our own shard; the timeout bounds how stale a steal
            // opportunity (a push to a different shard) can get.
            let shard = &self.shards[own % n];
            let jobs = shard.jobs.lock().expect("work queue poisoned");
            let _ = shard
                .ready
                .wait_timeout_while(jobs, IDLE_PARK, |jobs| jobs.is_empty())
                .expect("work queue poisoned");
        }
    }

    /// Closes the queues: pushes start failing, and workers exit once the remaining
    /// jobs drain.
    pub fn close(&self) {
        self.closed.store(true, Ordering::SeqCst);
        for shard in &self.shards {
            shard.ready.notify_all();
        }
    }

    /// True once [`close`](Self::close) has been called.
    pub fn is_closed(&self) -> bool {
        self.closed.load(Ordering::SeqCst)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn push_pop_round_trips_in_fifo_order() {
        let q = WorkQueues::new(1, 8);
        for i in 0..5 {
            q.try_push(0, i).unwrap();
        }
        assert_eq!(q.depth(), 5);
        for i in 0..5 {
            assert_eq!(q.pop(0), Some(i));
        }
    }

    #[test]
    fn full_queues_reject_with_the_job_returned() {
        let q = WorkQueues::new(2, 1);
        q.try_push(0, "a").unwrap();
        q.try_push(0, "b").unwrap(); // spills to shard 1
        assert_eq!(q.try_push(0, "c"), Err("c"), "all shards full");
        assert_eq!(q.depth(), 2);
    }

    #[test]
    fn workers_steal_from_other_shards() {
        let q = WorkQueues::new(4, 4);
        q.try_push(2, 99).unwrap();
        // Worker 0's own shard is empty; it must steal the job from shard 2.
        assert_eq!(q.pop(0), Some(99));
    }

    #[test]
    fn close_drains_remaining_jobs_then_returns_none() {
        let q = WorkQueues::new(2, 4);
        q.try_push(0, 1).unwrap();
        q.try_push(1, 2).unwrap();
        q.close();
        assert!(q.try_push(0, 3).is_err(), "closed queues reject pushes");
        let mut drained = vec![q.pop(0).unwrap(), q.pop(1).unwrap()];
        drained.sort_unstable();
        assert_eq!(drained, [1, 2]);
        assert_eq!(q.pop(0), None);
        assert_eq!(q.pop(1), None);
    }

    #[test]
    fn blocked_workers_wake_on_push_and_on_close() {
        let q = Arc::new(WorkQueues::new(2, 2));
        let worker = {
            let q = Arc::clone(&q);
            std::thread::spawn(move || {
                let mut got = Vec::new();
                while let Some(job) = q.pop(0) {
                    got.push(job);
                }
                got
            })
        };
        std::thread::sleep(Duration::from_millis(20));
        q.try_push(1, 7).unwrap(); // lands on the other shard; worker must steal it
        std::thread::sleep(Duration::from_millis(50));
        q.close();
        assert_eq!(worker.join().unwrap(), vec![7]);
    }

    #[test]
    fn concurrent_producers_and_stealing_consumers_lose_nothing() {
        let q = Arc::new(WorkQueues::new(4, 64));
        let total = 400;
        let consumers: Vec<_> = (0..4)
            .map(|w| {
                let q = Arc::clone(&q);
                std::thread::spawn(move || {
                    let mut got = Vec::new();
                    while let Some(job) = q.pop(w) {
                        got.push(job);
                    }
                    got
                })
            })
            .collect();
        let producers: Vec<_> = (0..4)
            .map(|p| {
                let q = Arc::clone(&q);
                std::thread::spawn(move || {
                    for i in 0..total / 4 {
                        let mut job = p * 1000 + i;
                        loop {
                            match q.try_push(job % 4, job) {
                                Ok(()) => break,
                                Err(j) => {
                                    job = j;
                                    std::thread::yield_now();
                                }
                            }
                        }
                    }
                })
            })
            .collect();
        for p in producers {
            p.join().unwrap();
        }
        // Let consumers drain, then close.
        while q.depth() > 0 {
            std::thread::sleep(Duration::from_millis(1));
        }
        q.close();
        let mut all: Vec<_> = consumers.into_iter().flat_map(|c| c.join().unwrap()).collect();
        all.sort_unstable();
        let mut expected: Vec<_> =
            (0..4).flat_map(|p| (0..total / 4).map(move |i| p * 1000 + i)).collect();
        expected.sort_unstable();
        assert_eq!(all, expected, "every job popped exactly once");
    }
}
