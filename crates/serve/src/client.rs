//! Blocking in-process client for the wire protocol.
//!
//! Used by the integration tests and the `rechisel-load` generator; also the
//! reference implementation of the client side of the protocol. One [`Client`]
//! owns one TCP connection and issues requests synchronously; `run_session`
//! collects the streamed event lines (decoded back into [`RunEvent`]s) until the
//! terminal reply arrives.

use std::io::{BufRead, BufReader, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::{Duration, Instant};

use rechisel_core::RunEvent;
use rechisel_sim::EngineKind;

use crate::json::{parse, Json};
use crate::wire::{decode_event, DEFAULT_MAX_ITERATIONS};

/// A client-side failure.
#[derive(Debug)]
pub enum ClientError {
    /// Transport failure.
    Io(std::io::Error),
    /// The server replied `ok: false` with this typed error.
    Server {
        /// The wire error kind (e.g. `busy`, `timeout`, `unknown_case`).
        kind: String,
        /// Human-readable message.
        message: String,
    },
    /// The server sent something the client could not interpret.
    Protocol(String),
}

impl ClientError {
    /// True when the server pushed back with `busy`.
    pub fn is_busy(&self) -> bool {
        matches!(self, ClientError::Server { kind, .. } if kind == "busy")
    }

    /// The wire error kind, when this is a server-side error.
    pub fn kind(&self) -> Option<&str> {
        match self {
            ClientError::Server { kind, .. } => Some(kind),
            _ => None,
        }
    }
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "io error: {e}"),
            ClientError::Server { kind, message } => write!(f, "server error [{kind}]: {message}"),
            ClientError::Protocol(m) => write!(f, "protocol error: {m}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> Self {
        ClientError::Io(e)
    }
}

/// Result of a `compile` request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CompileReply {
    /// The circuit's content fingerprint (32 hex digits).
    pub fingerprint: String,
    /// Whether the artifacts were already resident before this request.
    pub cached: bool,
    /// Size of the emitted Verilog.
    pub verilog_bytes: u64,
}

/// Result of a `simulate` request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SimulateReply {
    /// Whether every checked point passed.
    pub passed: bool,
    /// Number of checked points.
    pub points: u64,
}

/// Result of a `run_session` request: the streamed events plus the terminal
/// summary.
#[derive(Debug, Clone, PartialEq)]
pub struct SessionOutcome {
    /// Every streamed event, in order.
    pub events: Vec<RunEvent>,
    /// Whether a candidate passed within the iteration cap.
    pub success: bool,
    /// Iteration of first success, if any.
    pub success_iteration: Option<u32>,
    /// Iterations evaluated.
    pub iterations: u64,
    /// Escape firings.
    pub escapes: u64,
}

/// What [`Client::drain_sessions`] returns: `(id, outcome)` pairs in completion
/// order, where a typed server rejection (e.g. `busy`) is the per-id `Err`.
pub type DrainedSessions = Vec<(u64, Result<SessionOutcome, ClientError>)>;

/// Parameters of a `run_session` request.
#[derive(Debug, Clone)]
pub struct SessionRequest {
    /// Suite case id.
    pub case: String,
    /// Sample index.
    pub sample: u32,
    /// Wire model name (`None` = server default).
    pub model: Option<String>,
    /// Iteration cap.
    pub max_iterations: u32,
    /// Simulation engine (`None` = server default).
    pub engine: Option<EngineKind>,
}

impl SessionRequest {
    /// A session request for `case` with the defaults.
    pub fn new(case: impl Into<String>) -> Self {
        Self {
            case: case.into(),
            sample: 0,
            model: None,
            max_iterations: DEFAULT_MAX_ITERATIONS,
            engine: None,
        }
    }

    /// Sets the sample index.
    pub fn sample(mut self, sample: u32) -> Self {
        self.sample = sample;
        self
    }

    /// Sets the wire model name.
    pub fn model(mut self, model: impl Into<String>) -> Self {
        self.model = Some(model.into());
        self
    }

    /// Sets the iteration cap.
    pub fn max_iterations(mut self, n: u32) -> Self {
        self.max_iterations = n;
        self
    }
}

/// Cache + server counters from a `stats` request, as raw JSON (the typed parts
/// most callers need have accessors).
#[derive(Debug, Clone, PartialEq)]
pub struct StatsReply {
    /// The full reply object.
    pub raw: Json,
}

impl StatsReply {
    fn num(&self, section: &str, field: &str) -> u64 {
        self.raw.get(section).and_then(|s| s.get(field)).and_then(Json::as_u64).unwrap_or_default()
    }

    /// Cache hits so far.
    pub fn cache_hits(&self) -> u64 {
        self.num("cache", "hits")
    }

    /// Cache misses so far.
    pub fn cache_misses(&self) -> u64 {
        self.num("cache", "misses")
    }

    /// Cache hit rate in `[0, 1]`.
    pub fn cache_hit_rate(&self) -> f64 {
        self.raw
            .get("cache")
            .and_then(|s| s.get("hit_rate"))
            .and_then(Json::as_f64)
            .unwrap_or_default()
    }

    /// `busy` replies the server has sent.
    pub fn server_busy(&self) -> u64 {
        self.num("server", "busy")
    }

    /// High-water mark of queued + executing jobs.
    pub fn jobs_high_water(&self) -> u64 {
        self.num("server", "jobs_high_water")
    }

    /// Sessions the server has completed.
    pub fn sessions(&self) -> u64 {
        self.num("server", "sessions")
    }
}

/// A blocking protocol client over one TCP connection.
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
    next_id: u64,
}

impl Client {
    /// Connects to a server.
    ///
    /// # Errors
    ///
    /// Propagates connect failures.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Self, ClientError> {
        let stream = TcpStream::connect(addr)?;
        // A generous ceiling so a wedged server cannot hang a test run forever;
        // sessions stream events well within this.
        stream.set_read_timeout(Some(Duration::from_secs(120)))?;
        let writer = stream.try_clone()?;
        Ok(Self { reader: BufReader::new(stream), writer, next_id: 0 })
    }

    /// Connects, retrying for up to `timeout` — covers the startup race when the
    /// server process was just spawned.
    ///
    /// # Errors
    ///
    /// Returns the last connect error when the deadline passes.
    pub fn connect_with_retry(
        addr: impl ToSocketAddrs + Clone,
        timeout: Duration,
    ) -> Result<Self, ClientError> {
        let deadline = Instant::now() + timeout;
        loop {
            match Self::connect(addr.clone()) {
                Ok(client) => return Ok(client),
                Err(e) if Instant::now() >= deadline => return Err(e),
                Err(_) => std::thread::sleep(Duration::from_millis(50)),
            }
        }
    }

    fn send(&mut self, mut request: Json) -> Result<u64, ClientError> {
        self.next_id += 1;
        let id = self.next_id;
        if let Json::Obj(map) = &mut request {
            map.insert("id".into(), Json::from(id));
        }
        let mut line = request.encode();
        line.push('\n');
        self.writer.write_all(line.as_bytes())?;
        Ok(id)
    }

    /// Sends a raw line (malformed on purpose or not) and returns the next reply
    /// line's JSON — the robustness-test hook.
    ///
    /// # Errors
    ///
    /// Propagates transport errors; replies that are not valid JSON become
    /// [`ClientError::Protocol`].
    pub fn send_raw_line(&mut self, line: &str) -> Result<Json, ClientError> {
        self.writer.write_all(line.as_bytes())?;
        self.writer.write_all(b"\n")?;
        self.read_value()
    }

    fn read_value(&mut self) -> Result<Json, ClientError> {
        let mut line = String::new();
        let n = self.reader.read_line(&mut line)?;
        if n == 0 {
            return Err(ClientError::Protocol("connection closed by server".into()));
        }
        parse(line.trim_end()).map_err(|e| ClientError::Protocol(format!("unparseable reply: {e}")))
    }

    /// Reads reply lines until the terminal reply for `id`, streaming any event
    /// lines to `on_event`. Lines for other ids are a protocol error (this client
    /// is strictly sequential).
    fn read_terminal(
        &mut self,
        id: u64,
        mut on_event: impl FnMut(&Json),
    ) -> Result<Json, ClientError> {
        loop {
            let value = self.read_value()?;
            let line_id = value.get("id").and_then(Json::as_u64);
            if line_id != Some(id) {
                return Err(ClientError::Protocol(format!(
                    "reply for unexpected id {line_id:?} (want {id})"
                )));
            }
            if let Some(event) = value.get("event") {
                on_event(event);
                continue;
            }
            return match value.get("ok").and_then(Json::as_bool) {
                Some(true) => Ok(value),
                Some(false) => {
                    let err = value.get("error");
                    Err(ClientError::Server {
                        kind: err
                            .and_then(|e| e.get("kind"))
                            .and_then(Json::as_str)
                            .unwrap_or("unknown")
                            .to_string(),
                        message: err
                            .and_then(|e| e.get("message"))
                            .and_then(Json::as_str)
                            .unwrap_or_default()
                            .to_string(),
                    })
                }
                None => Err(ClientError::Protocol("reply missing `ok`".into())),
            };
        }
    }

    fn request(&mut self, body: Json) -> Result<Json, ClientError> {
        let id = self.send(body)?;
        self.read_terminal(id, |_| {})
    }

    /// Liveness check.
    ///
    /// # Errors
    ///
    /// Any transport, server or protocol error.
    pub fn ping(&mut self) -> Result<(), ClientError> {
        self.request(Json::obj([("op", Json::from("ping"))])).map(|_| ())
    }

    /// Compiles a suite case's reference through the server's artifact cache.
    ///
    /// # Errors
    ///
    /// Any transport, server or protocol error (e.g. `unknown_case`, `busy`).
    pub fn compile(&mut self, case: &str) -> Result<CompileReply, ClientError> {
        let reply =
            self.request(Json::obj([("op", Json::from("compile")), ("case", Json::from(case))]))?;
        Ok(CompileReply {
            fingerprint: reply
                .get("fingerprint")
                .and_then(Json::as_str)
                .unwrap_or_default()
                .to_string(),
            cached: reply.get("cached").and_then(Json::as_bool).unwrap_or_default(),
            verilog_bytes: reply.get("verilog_bytes").and_then(Json::as_u64).unwrap_or_default(),
        })
    }

    /// Runs a case's testbench against its own reference design.
    ///
    /// # Errors
    ///
    /// Any transport, server or protocol error.
    pub fn simulate(&mut self, case: &str) -> Result<SimulateReply, ClientError> {
        let reply =
            self.request(Json::obj([("op", Json::from("simulate")), ("case", Json::from(case))]))?;
        Ok(SimulateReply {
            passed: reply.get("passed").and_then(Json::as_bool).unwrap_or_default(),
            points: reply.get("points").and_then(Json::as_u64).unwrap_or_default(),
        })
    }

    /// Runs one ReChisel session, collecting the streamed events.
    ///
    /// # Errors
    ///
    /// Any transport, server or protocol error; `busy` when backpressure rejected
    /// the job.
    pub fn run_session(&mut self, request: &SessionRequest) -> Result<SessionOutcome, ClientError> {
        let id = self.start_session(request)?;
        let mut outcomes = self.drain_sessions(&[id])?;
        outcomes.remove(0).1
    }

    /// Sends a `run_session` request without waiting for its reply — the open-loop
    /// pipelining entry point. Pair with [`drain_sessions`](Self::drain_sessions).
    ///
    /// # Errors
    ///
    /// Propagates transport errors.
    pub fn start_session(&mut self, request: &SessionRequest) -> Result<u64, ClientError> {
        let mut body = vec![
            ("op", Json::from("run_session")),
            ("case", Json::from(request.case.as_str())),
            ("sample", Json::from(request.sample)),
            ("max_iterations", Json::from(request.max_iterations)),
        ];
        if let Some(model) = &request.model {
            body.push(("model", Json::from(model.as_str())));
        }
        if let Some(engine) = request.engine {
            let name = match engine {
                EngineKind::Interp => "interp",
                EngineKind::Compiled => "compiled",
                EngineKind::Batched => "batched",
                EngineKind::Native => "native",
            };
            body.push(("engine", Json::from(name)));
        }
        self.send(Json::obj(body))
    }

    /// Drains the replies of previously [started](Self::start_session) sessions,
    /// demultiplexing the interleaved event/terminal lines of concurrently
    /// executing jobs. Returns `(id, outcome)` pairs in completion order; a typed
    /// server rejection (e.g. `busy`) is the per-id `Err`.
    ///
    /// # Errors
    ///
    /// The outer `Err` is a transport or protocol failure that aborts the drain.
    pub fn drain_sessions(&mut self, ids: &[u64]) -> Result<DrainedSessions, ClientError> {
        use std::collections::{HashMap, HashSet};
        let mut pending: HashSet<u64> = ids.iter().copied().collect();
        let mut events: HashMap<u64, Vec<RunEvent>> = HashMap::new();
        let mut done = Vec::with_capacity(ids.len());
        while !pending.is_empty() {
            let value = self.read_value()?;
            let Some(id) = value.get("id").and_then(Json::as_u64) else {
                return Err(ClientError::Protocol(format!("reply without id: {}", value.encode())));
            };
            if !pending.contains(&id) {
                return Err(ClientError::Protocol(format!("reply for unexpected id {id}")));
            }
            if let Some(event) = value.get("event") {
                match decode_event(event) {
                    Some(e) => events.entry(id).or_default().push(e),
                    None => {
                        return Err(ClientError::Protocol(format!(
                            "undecodable event line for id {id}"
                        )))
                    }
                }
                continue;
            }
            pending.remove(&id);
            let outcome = match value.get("ok").and_then(Json::as_bool) {
                Some(true) => Ok(SessionOutcome {
                    events: events.remove(&id).unwrap_or_default(),
                    success: value.get("success").and_then(Json::as_bool).unwrap_or_default(),
                    success_iteration: value
                        .get("success_iteration")
                        .and_then(Json::as_u64)
                        .map(|n| n as u32),
                    iterations: value.get("iterations").and_then(Json::as_u64).unwrap_or_default(),
                    escapes: value.get("escapes").and_then(Json::as_u64).unwrap_or_default(),
                }),
                Some(false) => {
                    let err = value.get("error");
                    Err(ClientError::Server {
                        kind: err
                            .and_then(|e| e.get("kind"))
                            .and_then(Json::as_str)
                            .unwrap_or("unknown")
                            .to_string(),
                        message: err
                            .and_then(|e| e.get("message"))
                            .and_then(Json::as_str)
                            .unwrap_or_default()
                            .to_string(),
                    })
                }
                None => return Err(ClientError::Protocol("reply missing `ok`".into())),
            };
            done.push((id, outcome));
        }
        Ok(done)
    }

    /// Fetches cache + server counters.
    ///
    /// # Errors
    ///
    /// Any transport, server or protocol error.
    pub fn stats(&mut self) -> Result<StatsReply, ClientError> {
        self.request(Json::obj([("op", Json::from("stats"))])).map(|raw| StatsReply { raw })
    }

    /// Requests graceful server shutdown.
    ///
    /// # Errors
    ///
    /// Any transport, server or protocol error.
    pub fn shutdown_server(&mut self) -> Result<(), ClientError> {
        self.request(Json::obj([("op", Json::from("shutdown"))])).map(|_| ())
    }
}
