//! The experiment server: TCP acceptor, connection readers, worker-shard pool.
//!
//! One [`Server`] owns the full 216-case benchmark suite with a shared
//! [`ArtifactCache`] attached to every case, a [`WorkQueues`] shard pool sized by
//! [`ServerConfig::shards`], and the listener. Light operations (`ping`, `stats`,
//! `shutdown`) are answered inline on the connection's reader thread; heavy ones
//! (`compile`, `simulate`, `run_session`) are enqueued to the shard keyed by
//! FNV(case, sample) — so repeated requests for one case land on a warm worker —
//! with work-stealing and a typed `busy` reply when every queue is full.
//!
//! `run_session` streams the session's [`RunEvent`]s to the client *as they
//! happen* through a [`WireObserver`] plugged into the engine's observer seam, then
//! sends the terminal reply. Graceful shutdown stops accepting, lets connection
//! readers finish the line they're on, drains every queued job, and joins all
//! threads — no request is dropped without a reply.

use std::collections::HashMap;
use std::io::{ErrorKind as IoErrorKind, Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use rechisel_benchsuite::case::BenchmarkCase;
use rechisel_benchsuite::runner::run_sample_with_engine;
use rechisel_benchsuite::suite::full_suite;
use rechisel_core::{ArtifactCache, CacheStats, Engine, Observer, RunEvent, WorkflowConfig};
use rechisel_sim::EngineKind;

use crate::json::{parse, Json};
use crate::queue::WorkQueues;
use crate::wire::{
    decode_request, encode_event, error_reply, ok_reply, ErrorKind, Op, Request, SERVED_LANGUAGE,
};

/// Server tunables. `Default` suits tests: an ephemeral loopback port, one worker
/// per available core (capped), and an unbounded cache.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Listen address; use port 0 for an ephemeral port.
    pub addr: String,
    /// Worker/shard count.
    pub shards: usize,
    /// Bounded per-shard queue capacity (backpressure trips when all are full).
    pub queue_capacity: usize,
    /// Maximum request line length in bytes; longer lines get an `oversized` reply.
    pub max_line_bytes: usize,
    /// Per-request read deadline: once the first byte of a line arrives, the full
    /// line must follow within this window or the connection gets a `timeout`
    /// reply and is closed. Idle connections (no partial line) are unaffected.
    pub read_timeout: Duration,
    /// Artifact cache byte budget (`u64::MAX` = unbounded, `0` = cache nothing).
    pub cache_budget: u64,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:0".into(),
            shards: std::thread::available_parallelism().map(|n| n.get()).unwrap_or(4).min(8),
            queue_capacity: 128,
            max_line_bytes: 64 * 1024,
            read_timeout: Duration::from_secs(10),
            cache_budget: u64::MAX,
        }
    }
}

/// Monotonic counters the `stats` op reports (all relaxed; monitoring only).
#[derive(Debug, Default)]
struct Counters {
    requests: AtomicU64,
    replies: AtomicU64,
    events: AtomicU64,
    busy: AtomicU64,
    errors: AtomicU64,
    sessions: AtomicU64,
    jobs_in_flight: AtomicU64,
    jobs_high_water: AtomicU64,
}

/// A point-in-time snapshot of the server-side counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ServerStats {
    /// Requests received (parsed or not).
    pub requests: u64,
    /// Terminal replies sent (ok or error).
    pub replies: u64,
    /// Streamed event lines sent.
    pub events: u64,
    /// Requests rejected with `busy`.
    pub busy: u64,
    /// Error replies sent (including `busy`).
    pub errors: u64,
    /// Sessions run to completion.
    pub sessions: u64,
    /// Jobs currently queued or executing.
    pub jobs_in_flight: u64,
    /// High-water mark of `jobs_in_flight`.
    pub jobs_high_water: u64,
}

/// Per-connection state shared between the reader thread and workers: the write
/// half (serialized by a mutex so event lines never interleave) plus a pending-job
/// count so a closing connection can drain its jobs first.
struct ConnState {
    writer: Mutex<TcpStream>,
    pending: Mutex<usize>,
    drained: Condvar,
    /// Set when a write fails (client gone); further output is skipped.
    dead: AtomicBool,
}

impl ConnState {
    /// Writes one protocol line; on failure marks the connection dead (jobs keep
    /// running but stop producing output).
    fn send(&self, inner: &Inner, line: &Json, is_event: bool) {
        if self.dead.load(Ordering::Relaxed) {
            return;
        }
        let mut encoded = line.encode();
        encoded.push('\n');
        let mut writer = self.writer.lock().expect("connection writer poisoned");
        if writer.write_all(encoded.as_bytes()).is_err() {
            self.dead.store(true, Ordering::Relaxed);
            return;
        }
        if is_event {
            inner.counters.events.fetch_add(1, Ordering::Relaxed);
        } else {
            inner.counters.replies.fetch_add(1, Ordering::Relaxed);
            if line.get("ok").and_then(Json::as_bool) == Some(false) {
                inner.counters.errors.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    fn job_started(&self) {
        *self.pending.lock().expect("pending counter poisoned") += 1;
    }

    fn job_finished(&self) {
        let mut pending = self.pending.lock().expect("pending counter poisoned");
        *pending -= 1;
        if *pending == 0 {
            self.drained.notify_all();
        }
    }

    /// Blocks until every job attributed to this connection has replied.
    fn wait_drained(&self) {
        let pending = self.pending.lock().expect("pending counter poisoned");
        let _guard =
            self.drained.wait_while(pending, |p| *p > 0).expect("pending counter poisoned");
    }
}

/// A queued heavy job: the request plus the connection to answer on.
struct Job {
    conn: Arc<ConnState>,
    request: Request,
}

/// State shared by the acceptor, connection readers and workers.
struct Inner {
    cases: HashMap<String, BenchmarkCase>,
    cache: Arc<ArtifactCache>,
    queues: WorkQueues<Job>,
    counters: Counters,
    config: ServerConfig,
    shutting_down: AtomicBool,
    /// Set by the wire `shutdown` op; [`ServerHandle::wait_shutdown_requested`]
    /// parks on it (the binary's main thread uses this).
    shutdown_requested: Mutex<bool>,
    shutdown_cv: Condvar,
}

impl Inner {
    fn snapshot(&self) -> ServerStats {
        ServerStats {
            requests: self.counters.requests.load(Ordering::Relaxed),
            replies: self.counters.replies.load(Ordering::Relaxed),
            events: self.counters.events.load(Ordering::Relaxed),
            busy: self.counters.busy.load(Ordering::Relaxed),
            errors: self.counters.errors.load(Ordering::Relaxed),
            sessions: self.counters.sessions.load(Ordering::Relaxed),
            jobs_in_flight: self.counters.jobs_in_flight.load(Ordering::Relaxed),
            jobs_high_water: self.counters.jobs_high_water.load(Ordering::Relaxed),
        }
    }

    fn job_enqueued(&self) {
        let now = self.counters.jobs_in_flight.fetch_add(1, Ordering::Relaxed) + 1;
        self.counters.jobs_high_water.fetch_max(now, Ordering::Relaxed);
    }

    fn job_done(&self) {
        self.counters.jobs_in_flight.fetch_sub(1, Ordering::Relaxed);
    }
}

/// An [`Observer`] that forwards every run event over the wire as it happens.
///
/// This is the serving side of the Observer seam from `rechisel_core::engine`:
/// plugged into `Engine::builder().observer(..)`, the client sees
/// `IterationStarted` / `FeedbackProduced` / … lines live during the reflection
/// loop, not an after-the-fact dump.
pub struct WireObserver {
    conn: Arc<ConnState>,
    inner: Arc<Inner>,
    id: u64,
}

impl Observer for WireObserver {
    fn on_event(&mut self, event: &RunEvent) {
        self.conn.send(&self.inner, &encode_event(self.id, event), true);
    }
}

/// A running server: join handles plus the shared state.
pub struct ServerHandle {
    inner: Arc<Inner>,
    addr: SocketAddr,
    acceptor: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
    connections: Arc<Mutex<Vec<JoinHandle<()>>>>,
}

/// The server entry point; see the [module docs](self).
pub struct Server;

impl Server {
    /// Binds the listener, loads the suite, spawns the worker pool and acceptor,
    /// and returns a handle. The server runs until [`ServerHandle::shutdown`].
    ///
    /// # Errors
    ///
    /// Returns the bind error when the address is unavailable.
    pub fn start(config: ServerConfig) -> std::io::Result<ServerHandle> {
        let listener = TcpListener::bind(&config.addr)?;
        let addr = listener.local_addr()?;
        let cache = Arc::new(ArtifactCache::with_budget(config.cache_budget));
        let cases = full_suite()
            .into_iter()
            .map(|case| {
                let id = case.id.clone();
                (id, case.with_artifact_cache(Arc::clone(&cache)))
            })
            .collect();
        let inner = Arc::new(Inner {
            cases,
            cache,
            queues: WorkQueues::new(config.shards, config.queue_capacity),
            counters: Counters::default(),
            config,
            shutting_down: AtomicBool::new(false),
            shutdown_requested: Mutex::new(false),
            shutdown_cv: Condvar::new(),
        });

        let workers = (0..inner.queues.shard_count())
            .map(|index| {
                let inner = Arc::clone(&inner);
                std::thread::Builder::new()
                    .name(format!("rechisel-worker-{index}"))
                    .spawn(move || worker_loop(&inner, index))
                    .expect("spawn worker")
            })
            .collect();

        let connections = Arc::new(Mutex::new(Vec::new()));
        let acceptor = {
            let inner = Arc::clone(&inner);
            let connections = Arc::clone(&connections);
            std::thread::Builder::new()
                .name("rechisel-acceptor".into())
                .spawn(move || acceptor_loop(&listener, &inner, &connections))
                .expect("spawn acceptor")
        };

        Ok(ServerHandle { inner, addr, acceptor: Some(acceptor), workers, connections })
    }
}

impl ServerHandle {
    /// The bound address (resolves port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Artifact-cache counters.
    pub fn cache_stats(&self) -> CacheStats {
        self.inner.cache.stats()
    }

    /// Server counters.
    pub fn stats(&self) -> ServerStats {
        self.inner.snapshot()
    }

    /// True once a client sent the wire `shutdown` op (or
    /// [`shutdown`][Self::shutdown] ran).
    pub fn shutdown_requested(&self) -> bool {
        *self.inner.shutdown_requested.lock().expect("shutdown flag poisoned")
    }

    /// Parks until a client requests shutdown over the wire.
    pub fn wait_shutdown_requested(&self) {
        let requested = self.inner.shutdown_requested.lock().expect("shutdown flag poisoned");
        let _guard =
            self.inner.shutdown_cv.wait_while(requested, |r| !*r).expect("shutdown flag poisoned");
    }

    /// Graceful shutdown: stop accepting, reject new work with `shutting_down`,
    /// drain every queued job (each still gets its reply), then join all threads.
    pub fn shutdown(mut self) {
        self.inner.shutting_down.store(true, Ordering::SeqCst);
        request_shutdown(&self.inner);
        // Unblock the acceptor's blocking `accept` with a no-op connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(acceptor) = self.acceptor.take() {
            let _ = acceptor.join();
        }
        // Readers notice the flag within their poll interval and finish; workers
        // drain the queues before exiting.
        let conns = std::mem::take(&mut *self.connections.lock().expect("connection list"));
        for conn in conns {
            let _ = conn.join();
        }
        self.inner.queues.close();
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

fn request_shutdown(inner: &Inner) {
    *inner.shutdown_requested.lock().expect("shutdown flag poisoned") = true;
    inner.shutdown_cv.notify_all();
}

fn acceptor_loop(
    listener: &TcpListener,
    inner: &Arc<Inner>,
    connections: &Arc<Mutex<Vec<JoinHandle<()>>>>,
) {
    for stream in listener.incoming() {
        if inner.shutting_down.load(Ordering::SeqCst) {
            return;
        }
        let Ok(stream) = stream else { continue };
        let inner = Arc::clone(inner);
        let handle = std::thread::Builder::new()
            .name("rechisel-conn".into())
            .spawn(move || connection_loop(stream, &inner))
            .expect("spawn connection thread");
        connections.lock().expect("connection list").push(handle);
    }
}

/// How often a blocked read wakes to re-check deadlines and the shutdown flag.
const READ_POLL: Duration = Duration::from_millis(50);

fn connection_loop(stream: TcpStream, inner: &Arc<Inner>) {
    if stream.set_read_timeout(Some(READ_POLL)).is_err() {
        return;
    }
    let writer = match stream.try_clone() {
        Ok(w) => w,
        Err(_) => return,
    };
    let conn = Arc::new(ConnState {
        writer: Mutex::new(writer),
        pending: Mutex::new(0),
        drained: Condvar::new(),
        dead: AtomicBool::new(false),
    });
    let mut reader = stream;
    let mut buffer: Vec<u8> = Vec::new();
    let mut chunk = [0u8; 4096];
    // Deadline of the line currently being assembled (armed at its first byte).
    let mut line_started: Option<Instant> = None;
    // When a line overflowed, discard bytes until its terminating newline.
    let mut discarding = false;

    loop {
        if conn.dead.load(Ordering::Relaxed) {
            break;
        }
        match reader.read(&mut chunk) {
            Ok(0) => break, // client closed
            Ok(n) => {
                let mut rest = &chunk[..n];
                while let Some(pos) = rest.iter().position(|b| *b == b'\n') {
                    let (head, tail) = rest.split_at(pos);
                    rest = &tail[1..];
                    if discarding {
                        discarding = false;
                        buffer.clear();
                        line_started = None;
                        continue;
                    }
                    buffer.extend_from_slice(head);
                    let line = std::mem::take(&mut buffer);
                    line_started = None;
                    handle_line(&line, &conn, inner);
                    if inner.shutting_down.load(Ordering::SeqCst)
                        && conn.dead.load(Ordering::Relaxed)
                    {
                        break;
                    }
                }
                if discarding {
                    continue;
                }
                if !rest.is_empty() {
                    if buffer.is_empty() {
                        line_started = Some(Instant::now());
                    }
                    buffer.extend_from_slice(rest);
                    if buffer.len() > inner.config.max_line_bytes {
                        inner.counters.requests.fetch_add(1, Ordering::Relaxed);
                        conn.send(
                            inner,
                            &error_reply(None, ErrorKind::Oversized, "request line too long"),
                            false,
                        );
                        buffer.clear();
                        line_started = None;
                        discarding = true;
                    }
                }
            }
            Err(e) if e.kind() == IoErrorKind::WouldBlock || e.kind() == IoErrorKind::TimedOut => {
                if inner.shutting_down.load(Ordering::SeqCst) {
                    break;
                }
                if let Some(started) = line_started {
                    if started.elapsed() > inner.config.read_timeout {
                        inner.counters.requests.fetch_add(1, Ordering::Relaxed);
                        conn.send(
                            inner,
                            &error_reply(
                                None,
                                ErrorKind::Timeout,
                                "request line not completed within the read deadline",
                            ),
                            false,
                        );
                        break;
                    }
                }
            }
            Err(_) => break,
        }
    }
    // Wait for in-flight jobs of this connection to reply before closing the
    // socket — part of the "no request dropped without a reply" guarantee.
    conn.wait_drained();
    let _ = reader.shutdown(Shutdown::Both);
}

fn handle_line(line: &[u8], conn: &Arc<ConnState>, inner: &Arc<Inner>) {
    // Tolerate CRLF line endings and skip blank lines silently.
    let line = match line.last() {
        Some(b'\r') => &line[..line.len() - 1],
        _ => line,
    };
    if line.is_empty() {
        return;
    }
    inner.counters.requests.fetch_add(1, Ordering::Relaxed);

    let Ok(text) = std::str::from_utf8(line) else {
        conn.send(inner, &error_reply(None, ErrorKind::BadRequest, "invalid UTF-8"), false);
        return;
    };
    let value = match parse(text) {
        Ok(v) => v,
        Err(e) => {
            conn.send(
                inner,
                &error_reply(None, ErrorKind::BadRequest, &format!("invalid JSON: {e}")),
                false,
            );
            return;
        }
    };
    let request = match decode_request(&value) {
        Ok(r) => r,
        Err((id, kind, message)) => {
            conn.send(inner, &error_reply(id, kind, &message), false);
            return;
        }
    };

    match &request.op {
        // Light ops answer inline on the reader thread.
        Op::Ping => {
            conn.send(inner, &ok_reply(request.id, [("pong", Json::Bool(true))]), false);
        }
        Op::Stats => {
            conn.send(inner, &stats_reply(request.id, inner), false);
        }
        Op::Shutdown => {
            inner.shutting_down.store(true, Ordering::SeqCst);
            conn.send(inner, &ok_reply(request.id, [("stopping", Json::Bool(true))]), false);
            request_shutdown(inner);
        }
        // Heavy ops go to the shard pool.
        Op::Compile { case } | Op::Simulate { case, .. } | Op::RunSession { case, .. } => {
            if inner.shutting_down.load(Ordering::SeqCst) {
                conn.send(
                    inner,
                    &error_reply(Some(request.id), ErrorKind::ShuttingDown, "server is draining"),
                    false,
                );
                return;
            }
            let sample = match &request.op {
                Op::RunSession { sample, .. } => *sample,
                _ => 0,
            };
            let hint = shard_hint(case, sample, inner.queues.shard_count());
            let id = request.id;
            conn.job_started();
            inner.job_enqueued();
            let job = Job { conn: Arc::clone(conn), request };
            if let Err(rejected) = inner.queues.try_push(hint, job) {
                rejected.conn.job_finished();
                inner.job_done();
                inner.counters.busy.fetch_add(1, Ordering::Relaxed);
                let kind = if inner.queues.is_closed() {
                    ErrorKind::ShuttingDown
                } else {
                    ErrorKind::Busy
                };
                conn.send(inner, &error_reply(Some(id), kind, "all work queues are full"), false);
            }
        }
    }
}

/// FNV-1a over `case` and `sample`: same case+sample → same shard (warm caches);
/// distinct samples spread across the pool.
fn shard_hint(case: &str, sample: u32, shards: usize) -> usize {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for b in case.as_bytes().iter().chain(sample.to_le_bytes().iter()) {
        hash ^= u64::from(*b);
        hash = hash.wrapping_mul(0x1000_0000_01b3);
    }
    (hash as usize) % shards
}

fn stats_reply(id: u64, inner: &Inner) -> Json {
    let cache = inner.cache.stats();
    let server = inner.snapshot();
    ok_reply(
        id,
        [
            (
                "cache",
                Json::obj([
                    ("hits", Json::from(cache.hits)),
                    ("misses", Json::from(cache.misses)),
                    ("evictions", Json::from(cache.evictions)),
                    ("entries", Json::from(cache.entries)),
                    ("bytes", Json::from(cache.bytes)),
                    ("hit_rate", Json::from(cache.hit_rate())),
                ]),
            ),
            (
                "server",
                Json::obj([
                    ("requests", Json::from(server.requests)),
                    ("replies", Json::from(server.replies)),
                    ("events", Json::from(server.events)),
                    ("busy", Json::from(server.busy)),
                    ("errors", Json::from(server.errors)),
                    ("sessions", Json::from(server.sessions)),
                    ("jobs_in_flight", Json::from(server.jobs_in_flight)),
                    ("jobs_high_water", Json::from(server.jobs_high_water)),
                    ("queue_depth", Json::from(inner.queues.depth())),
                ]),
            ),
        ],
    )
}

fn worker_loop(inner: &Arc<Inner>, index: usize) {
    while let Some(job) = inner.queues.pop(index) {
        run_job(inner, job);
    }
}

fn run_job(inner: &Arc<Inner>, job: Job) {
    let Job { conn, request } = job;
    let id = request.id;
    let reply = match request.op {
        Op::Compile { case } => compile_op(inner, id, &case),
        Op::Simulate { case, engine } => simulate_op(inner, id, &case, engine),
        Op::RunSession { case, sample, model, max_iterations, engine } => {
            session_op(inner, &conn, id, &case, sample, &model, max_iterations, engine)
        }
        // Light ops never reach the queue.
        Op::Ping | Op::Stats | Op::Shutdown => {
            error_reply(Some(id), ErrorKind::Internal, "light op reached the worker pool")
        }
    };
    conn.send(inner, &reply, false);
    conn.job_finished();
    inner.job_done();
}

fn lookup_case<'a>(inner: &'a Inner, id: u64, case: &str) -> Result<&'a BenchmarkCase, Json> {
    inner.cases.get(case).ok_or_else(|| {
        error_reply(
            Some(id),
            ErrorKind::UnknownCase,
            &format!("no suite case `{case}` ({} cases loaded)", inner.cases.len()),
        )
    })
}

fn compile_op(inner: &Inner, id: u64, case: &str) -> Json {
    let case = match lookup_case(inner, id, case) {
        Ok(c) => c,
        Err(reply) => return reply,
    };
    let fingerprint = case.reference().fingerprint();
    let cached = inner.cache.peek(fingerprint).is_some();
    match inner.cache.get_or_compile(case.reference()) {
        Ok(artifacts) => ok_reply(
            id,
            [
                ("fingerprint", Json::from(artifacts.fingerprint.to_string())),
                ("cached", Json::Bool(cached)),
                ("verilog_bytes", Json::from(artifacts.verilog.len())),
            ],
        ),
        Err(diags) => error_reply(
            Some(id),
            ErrorKind::CompileError,
            &diags.first().map(|d| d.to_string()).unwrap_or_else(|| "compile failed".into()),
        ),
    }
}

fn simulate_op(inner: &Inner, id: u64, case: &str, engine: EngineKind) -> Json {
    let case = match lookup_case(inner, id, case) {
        Ok(c) => c,
        Err(reply) => return reply,
    };
    let tester = case.tester_with_engine(engine);
    let report = tester.test(tester.reference());
    ok_reply(
        id,
        [
            ("passed", Json::Bool(report.passed())),
            ("points", Json::from(report.total_points)),
            ("failures", Json::from(report.failures.len())),
        ],
    )
}

#[allow(clippy::too_many_arguments)]
fn session_op(
    inner: &Arc<Inner>,
    conn: &Arc<ConnState>,
    id: u64,
    case: &str,
    sample: u32,
    model: &rechisel_llm::ModelProfile,
    max_iterations: u32,
    engine: EngineKind,
) -> Json {
    let case = match lookup_case(inner, id, case) {
        Ok(c) => c,
        Err(reply) => return reply,
    };
    let observer = WireObserver { conn: Arc::clone(conn), inner: Arc::clone(inner), id };
    let session_engine = Engine::builder()
        .config(WorkflowConfig::paper_default().with_max_iterations(max_iterations))
        .sim_engine(engine)
        .observer(observer)
        .build();
    let result = run_sample_with_engine(&session_engine, case, model, SERVED_LANGUAGE, sample);
    inner.counters.sessions.fetch_add(1, Ordering::Relaxed);
    ok_reply(
        id,
        [
            ("success", Json::Bool(result.success)),
            ("success_iteration", result.success_iteration.map(Json::from).unwrap_or(Json::Null)),
            ("iterations", Json::from(result.statuses.len())),
            ("escapes", Json::from(result.escapes)),
        ],
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shard_hints_are_stable_and_spread() {
        let a = shard_hint("hdlbits/vector5", 0, 8);
        assert_eq!(a, shard_hint("hdlbits/vector5", 0, 8), "stable");
        let hints: std::collections::HashSet<_> =
            (0..32).map(|s| shard_hint("hdlbits/vector5", s, 8)).collect();
        assert!(hints.len() > 1, "samples spread across shards");
    }

    #[test]
    fn default_config_is_bounded() {
        let config = ServerConfig::default();
        assert!(config.shards >= 1 && config.shards <= 8);
        assert!(config.queue_capacity > 0);
        assert!(config.max_line_bytes >= 1024);
    }
}
