//! Wire protocol: newline-delimited JSON requests, replies and streamed events.
//!
//! Every request is one JSON object on one line with an `op` field and a
//! client-chosen numeric `id`; every line the server sends back carries that `id`,
//! so a client can multiplex (and the load generator can account for every
//! request). A request produces zero or more `{"id":N,"event":{...}}` stream lines
//! followed by exactly one terminal reply — `{"id":N,"ok":true,...}` or
//! `{"id":N,"ok":false,"error":{"kind":...,"message":...}}`. A request is never
//! dropped without a terminal reply.
//!
//! # Operations
//!
//! | op            | fields                                            | reply payload |
//! |---------------|---------------------------------------------------|---------------|
//! | `ping`        | —                                                 | `pong: true` |
//! | `compile`     | `case`                                            | `fingerprint`, `cached`, `verilog_bytes` |
//! | `simulate`    | `case`, `engine?`                                 | `passed`, `points` |
//! | `run_session` | `case`, `sample?`, `model?`, `max_iterations?`, `engine?` | streamed events + `success`, `iterations`, `escapes`, `success_iteration?` |
//! | `stats`       | —                                                 | `cache{...}`, `server{...}` |
//! | `shutdown`    | —                                                 | `stopping: true` |
//!
//! Error kinds: `bad_request`, `oversized`, `timeout`, `busy`, `unknown_case`,
//! `unknown_model`, `compile_error`, `shutting_down`, `internal`.

use rechisel_core::{IterationStatus, RunEvent, RunEventKind};
use rechisel_llm::{Language, ModelProfile};
use rechisel_sim::EngineKind;

use crate::json::Json;

/// Default iteration cap for `run_session` when the request omits it.
pub const DEFAULT_MAX_ITERATIONS: u32 = 10;

/// Typed error kinds a reply can carry; the wire form is the kebab-less
/// snake_case string in [`ErrorKind::as_str`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorKind {
    /// The line was not a JSON object with the required fields.
    BadRequest,
    /// The line exceeded the server's size limit.
    Oversized,
    /// The request line did not complete within the read deadline.
    Timeout,
    /// All work queues are full; retry later.
    Busy,
    /// The `case` id is not in the server's suite.
    UnknownCase,
    /// The `model` name is not a known profile.
    UnknownModel,
    /// The case's reference circuit failed to compile.
    CompileError,
    /// The server is draining and no longer accepts work.
    ShuttingDown,
    /// Unexpected server-side failure.
    Internal,
}

impl ErrorKind {
    /// The wire encoding of this kind.
    pub fn as_str(self) -> &'static str {
        match self {
            ErrorKind::BadRequest => "bad_request",
            ErrorKind::Oversized => "oversized",
            ErrorKind::Timeout => "timeout",
            ErrorKind::Busy => "busy",
            ErrorKind::UnknownCase => "unknown_case",
            ErrorKind::UnknownModel => "unknown_model",
            ErrorKind::CompileError => "compile_error",
            ErrorKind::ShuttingDown => "shutting_down",
            ErrorKind::Internal => "internal",
        }
    }
}

/// Builds a terminal error reply line (without trailing newline).
pub fn error_reply(id: Option<u64>, kind: ErrorKind, message: &str) -> Json {
    Json::obj([
        ("id", id.map(Json::from).unwrap_or(Json::Null)),
        ("ok", Json::Bool(false)),
        (
            "error",
            Json::obj([("kind", Json::from(kind.as_str())), ("message", Json::from(message))]),
        ),
    ])
}

/// Builds a terminal success reply line from extra payload fields.
pub fn ok_reply(id: u64, fields: impl IntoIterator<Item = (&'static str, Json)>) -> Json {
    let mut obj = match Json::obj(fields) {
        Json::Obj(map) => map,
        _ => unreachable!(),
    };
    obj.insert("id".into(), Json::from(id));
    obj.insert("ok".into(), Json::Bool(true));
    Json::Obj(obj)
}

/// A validated request.
#[derive(Debug, Clone, PartialEq)]
pub struct Request {
    /// Client-chosen id echoed on every line this request produces.
    pub id: u64,
    /// What to do.
    pub op: Op,
}

/// The operation of a [`Request`].
#[derive(Debug, Clone, PartialEq)]
pub enum Op {
    /// Liveness check (answered inline, never queued).
    Ping,
    /// Compile a suite case's reference circuit through the shared artifact cache.
    Compile {
        /// Suite case id.
        case: String,
    },
    /// Run the case's testbench against its own reference (a cache-warm sanity run).
    Simulate {
        /// Suite case id.
        case: String,
        /// Simulation engine.
        engine: EngineKind,
    },
    /// Run one ReChisel session (the paper's reflection loop) and stream its events.
    RunSession {
        /// Suite case id.
        case: String,
        /// Sample index (seeds the synthetic LLM together with the case seed).
        sample: u32,
        /// Synthetic model profile (boxed: a profile is ~200 bytes of defect-model
        /// parameters, and every other variant is a few words).
        model: Box<ModelProfile>,
        /// Iteration cap.
        max_iterations: u32,
        /// Simulation engine.
        engine: EngineKind,
    },
    /// Cache + server counters (answered inline).
    Stats,
    /// Begin graceful shutdown (answered inline, then the server drains).
    Shutdown,
}

/// Resolves a wire model name to a profile. `None` for unknown names.
pub fn model_by_name(name: &str) -> Option<ModelProfile> {
    match name {
        "gpt-4-turbo" => Some(ModelProfile::gpt4_turbo()),
        "gpt-4o" => Some(ModelProfile::gpt4o()),
        "gpt-4o-mini" => Some(ModelProfile::gpt4o_mini()),
        "claude-3.5-sonnet" => Some(ModelProfile::claude35_sonnet()),
        "claude-3.5-haiku" => Some(ModelProfile::claude35_haiku()),
        _ => None,
    }
}

/// The wire names accepted by [`model_by_name`].
pub const MODEL_NAMES: [&str; 5] =
    ["gpt-4-turbo", "gpt-4o", "gpt-4o-mini", "claude-3.5-sonnet", "claude-3.5-haiku"];

fn engine_by_name(name: &str) -> Option<EngineKind> {
    match name {
        "interp" => Some(EngineKind::Interp),
        "compiled" => Some(EngineKind::Compiled),
        "batched" => Some(EngineKind::Batched),
        "native" => Some(EngineKind::Native),
        _ => None,
    }
}

/// The language every served session generates in (the ReChisel path).
pub const SERVED_LANGUAGE: Language = Language::Chisel;

/// Decodes and validates one request line's parsed JSON.
///
/// # Errors
///
/// Returns the id (when one was recoverable) and a typed error for the reply.
pub fn decode_request(value: &Json) -> Result<Request, (Option<u64>, ErrorKind, String)> {
    let id = value.get("id").and_then(Json::as_u64);
    let fail = |kind: ErrorKind, msg: String| Err((id, kind, msg));
    if !matches!(value, Json::Obj(_)) {
        return fail(ErrorKind::BadRequest, "request must be a JSON object".into());
    }
    let Some(id) = id else {
        return fail(ErrorKind::BadRequest, "missing or non-integer `id`".into());
    };
    let Some(op) = value.get("op").and_then(Json::as_str) else {
        return fail(ErrorKind::BadRequest, "missing `op`".into());
    };
    let case = || -> Result<String, (Option<u64>, ErrorKind, String)> {
        value.get("case").and_then(Json::as_str).map(str::to_string).ok_or((
            Some(id),
            ErrorKind::BadRequest,
            "missing `case`".into(),
        ))
    };
    let engine = || -> Result<EngineKind, (Option<u64>, ErrorKind, String)> {
        match value.get("engine") {
            None => Ok(EngineKind::Compiled),
            Some(v) => v.as_str().and_then(engine_by_name).ok_or((
                Some(id),
                ErrorKind::BadRequest,
                "unknown `engine`".into(),
            )),
        }
    };
    let op = match op {
        "ping" => Op::Ping,
        "stats" => Op::Stats,
        "shutdown" => Op::Shutdown,
        "compile" => Op::Compile { case: case()? },
        "simulate" => Op::Simulate { case: case()?, engine: engine()? },
        "run_session" => {
            let model = match value.get("model") {
                None => Box::new(ModelProfile::gpt4o()),
                Some(v) => match v.as_str().and_then(model_by_name) {
                    Some(profile) => Box::new(profile),
                    None => {
                        return fail(
                            ErrorKind::UnknownModel,
                            format!("unknown `model` (known: {})", MODEL_NAMES.join(", ")),
                        )
                    }
                },
            };
            let sample = match value.get("sample") {
                None => 0,
                Some(v) => match v.as_u64() {
                    Some(n) if n <= u64::from(u32::MAX) => n as u32,
                    _ => return fail(ErrorKind::BadRequest, "invalid `sample`".into()),
                },
            };
            let max_iterations = match value.get("max_iterations") {
                None => DEFAULT_MAX_ITERATIONS,
                Some(v) => match v.as_u64() {
                    Some(n) if n <= 1000 => n as u32,
                    _ => return fail(ErrorKind::BadRequest, "invalid `max_iterations`".into()),
                },
            };
            Op::RunSession { case: case()?, sample, model, max_iterations, engine: engine()? }
        }
        other => return fail(ErrorKind::BadRequest, format!("unknown op `{other}`")),
    };
    Ok(Request { id, op })
}

/// Encodes a streamed run event line.
pub fn encode_event(id: u64, event: &RunEvent) -> Json {
    let kind = match event.kind {
        RunEventKind::RunStarted => Json::obj([("type", Json::from("run_started"))]),
        RunEventKind::IterationStarted { iteration } => Json::obj([
            ("type", Json::from("iteration_started")),
            ("iteration", Json::from(iteration)),
        ]),
        RunEventKind::FeedbackProduced { iteration, status } => Json::obj([
            ("type", Json::from("feedback_produced")),
            ("iteration", Json::from(iteration)),
            ("status", Json::from(status_name(status))),
        ]),
        RunEventKind::EscapeFired { iteration, discarded } => Json::obj([
            ("type", Json::from("escape_fired")),
            ("iteration", Json::from(iteration)),
            ("discarded", Json::from(discarded)),
        ]),
        RunEventKind::Success { iteration } => {
            Json::obj([("type", Json::from("success")), ("iteration", Json::from(iteration))])
        }
        RunEventKind::RunFinished { success, iterations, escapes } => Json::obj([
            ("type", Json::from("run_finished")),
            ("success", Json::from(success)),
            ("iterations", Json::from(iterations)),
            ("escapes", Json::from(escapes)),
        ]),
    };
    Json::obj([
        ("id", Json::from(id)),
        (
            "event",
            Json::obj([
                ("spec", Json::from(event.spec.as_str())),
                ("attempt", Json::from(event.attempt)),
                ("kind", kind),
            ]),
        ),
    ])
}

fn status_name(status: IterationStatus) -> &'static str {
    match status {
        IterationStatus::Success => "success",
        IterationStatus::SyntaxError => "syntax_error",
        IterationStatus::FunctionalError => "functional_error",
    }
}

fn status_by_name(name: &str) -> Option<IterationStatus> {
    match name {
        "success" => Some(IterationStatus::Success),
        "syntax_error" => Some(IterationStatus::SyntaxError),
        "functional_error" => Some(IterationStatus::FunctionalError),
        _ => None,
    }
}

/// Decodes a streamed event line back into a [`RunEvent`] (the client side of
/// [`encode_event`]); `None` when the payload is not a well-formed event.
pub fn decode_event(event: &Json) -> Option<RunEvent> {
    let spec = event.get("spec")?.as_str()?.to_string();
    let attempt = event.get("attempt")?.as_u64()? as u32;
    let kind = event.get("kind")?;
    let iteration = || kind.get("iteration").and_then(Json::as_u64).map(|n| n as u32);
    let kind = match kind.get("type")?.as_str()? {
        "run_started" => RunEventKind::RunStarted,
        "iteration_started" => RunEventKind::IterationStarted { iteration: iteration()? },
        "feedback_produced" => RunEventKind::FeedbackProduced {
            iteration: iteration()?,
            status: status_by_name(kind.get("status")?.as_str()?)?,
        },
        "escape_fired" => RunEventKind::EscapeFired {
            iteration: iteration()?,
            discarded: kind.get("discarded").and_then(Json::as_u64)? as u32,
        },
        "success" => RunEventKind::Success { iteration: iteration()? },
        "run_finished" => RunEventKind::RunFinished {
            success: kind.get("success")?.as_bool()?,
            iterations: kind.get("iterations").and_then(Json::as_u64)? as u32,
            escapes: kind.get("escapes").and_then(Json::as_u64)? as u32,
        },
        _ => return None,
    };
    Some(RunEvent { spec, attempt, kind })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::parse;

    #[test]
    fn decodes_a_full_run_session_request() {
        let line = r#"{"op":"run_session","id":9,"case":"hdlbits/vector5","sample":3,
                       "model":"claude-3.5-haiku","max_iterations":4,"engine":"batched"}"#;
        let req = decode_request(&parse(line).unwrap()).unwrap();
        assert_eq!(req.id, 9);
        match req.op {
            Op::RunSession { case, sample, model, max_iterations, engine } => {
                assert_eq!(case, "hdlbits/vector5");
                assert_eq!(sample, 3);
                assert_eq!(model.name, "Claude 3.5 Haiku");
                assert_eq!(max_iterations, 4);
                assert_eq!(engine, EngineKind::Batched);
            }
            other => panic!("wrong op: {other:?}"),
        }
    }

    #[test]
    fn defaults_fill_in_for_omitted_fields() {
        let req =
            decode_request(&parse(r#"{"op":"run_session","id":1,"case":"c"}"#).unwrap()).unwrap();
        match req.op {
            Op::RunSession { sample, model, max_iterations, engine, .. } => {
                assert_eq!(sample, 0);
                assert_eq!(model.name, "GPT-4o");
                assert_eq!(max_iterations, DEFAULT_MAX_ITERATIONS);
                assert_eq!(engine, EngineKind::Compiled);
            }
            other => panic!("wrong op: {other:?}"),
        }
    }

    #[test]
    fn typed_errors_for_bad_requests() {
        let cases = [
            (r#"{"op":"ping"}"#, ErrorKind::BadRequest),
            (r#"{"id":1}"#, ErrorKind::BadRequest),
            (r#"{"op":"warp","id":1}"#, ErrorKind::BadRequest),
            (r#"{"op":"compile","id":1}"#, ErrorKind::BadRequest),
            (r#"{"op":"run_session","id":1,"case":"c","model":"gpt-5"}"#, ErrorKind::UnknownModel),
            (r#"{"op":"simulate","id":1,"case":"c","engine":"quantum"}"#, ErrorKind::BadRequest),
            (r#"{"op":"run_session","id":1,"case":"c","sample":-1}"#, ErrorKind::BadRequest),
        ];
        for (line, want) in cases {
            let (_, kind, _) = decode_request(&parse(line).unwrap()).unwrap_err();
            assert_eq!(kind, want, "line {line}");
        }
    }

    #[test]
    fn events_round_trip_through_the_wire_encoding() {
        let events = [
            RunEventKind::RunStarted,
            RunEventKind::IterationStarted { iteration: 2 },
            RunEventKind::FeedbackProduced { iteration: 2, status: IterationStatus::SyntaxError },
            RunEventKind::EscapeFired { iteration: 3, discarded: 2 },
            RunEventKind::Success { iteration: 4 },
            RunEventKind::RunFinished { success: true, iterations: 5, escapes: 1 },
        ];
        for kind in events {
            let event = RunEvent { spec: "Adder".into(), attempt: 7, kind };
            let line = encode_event(42, &event);
            assert_eq!(line.get("id").and_then(Json::as_u64), Some(42));
            let decoded = decode_event(line.get("event").unwrap()).unwrap();
            assert_eq!(decoded, event);
        }
    }

    #[test]
    fn error_replies_carry_kind_and_id() {
        let reply = error_reply(Some(5), ErrorKind::Busy, "try later");
        assert_eq!(reply.get("ok").and_then(Json::as_bool), Some(false));
        assert_eq!(reply.get("id").and_then(Json::as_u64), Some(5));
        let err = reply.get("error").unwrap();
        assert_eq!(err.get("kind").and_then(Json::as_str), Some("busy"));
        let anon = error_reply(None, ErrorKind::BadRequest, "no id");
        assert_eq!(anon.get("id"), Some(&Json::Null));
    }

    #[test]
    fn all_model_names_resolve() {
        for name in MODEL_NAMES {
            assert!(model_by_name(name).is_some(), "{name}");
        }
        assert!(model_by_name("gpt-2").is_none());
    }
}
