//! # rechisel-hcl
//!
//! A Chisel-like hardware construction language embedded in Rust — the "Chisel" half of
//! the ReChisel reproduction's substrate. Reference designs for the benchmark suite, the
//! examples, and the defect-injection machinery all build circuits through this crate,
//! which records them into the `rechisel-firrtl` IR for checking, simulation and Verilog
//! emission.
//!
//! The API mirrors Chisel's surface: modules with implicit clock/reset, `IO`s,
//! `Wire`/`WireDefault`, `Reg`/`RegInit`/`RegNext`, `when`/`.otherwise`, `switch`/`is`,
//! `Vec` and `Bundle` aggregates, and the usual operator set (`+&`, `===`, `Cat`,
//! `Mux`, bit extraction, reductions, casts).
//!
//! # Example
//!
//! ```
//! use rechisel_hcl::prelude::*;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // A 2-to-1 mux with a registered output.
//! let mut m = ModuleBuilder::new("MuxReg");
//! let sel = m.input("sel", Type::bool());
//! let a = m.input("a", Type::uint(8));
//! let b = m.input("b", Type::uint(8));
//! let out = m.output("out", Type::uint(8));
//! let picked = mux(&sel, &a, &b);
//! let q = m.reg_next_init("q", Type::uint(8), &picked, &Signal::lit_w(0, 8));
//! m.connect(&out, &q);
//!
//! let circuit = m.into_circuit();
//! assert!(!rechisel_firrtl::check_circuit(&circuit).has_errors());
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

pub mod builder;
pub mod signal;

pub use builder::{Mem, ModuleBuilder, SwitchBuilder};
pub use signal::{cat_all, mux, mux_case, pop_count, reduce, Signal};

/// Convenience re-exports for building circuits.
pub mod prelude {
    pub use crate::builder::{Mem, ModuleBuilder, SwitchBuilder};
    pub use crate::signal::{cat_all, mux, mux_case, pop_count, reduce, Signal};
    pub use rechisel_firrtl::ir::{Circuit, Field, Module, ReadUnderWrite, Type};
}
