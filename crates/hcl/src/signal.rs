//! Signal handles: typed expression wrappers with Chisel-flavoured operators.
//!
//! A [`Signal`] pairs a [`rechisel_firrtl::ir::Expression`] with the [`Type`] it
//! elaborates to. Operator methods build new expressions without touching the module
//! builder, exactly like Chisel expressions are pure values until they are connected.
//! All typing here is best-effort — the authoritative checks run in `rechisel-firrtl`
//! when the finished circuit is compiled.

use rechisel_firrtl::ir::{Expression, PrimOp, Type};

/// A typed hardware expression handle.
#[derive(Debug, Clone, PartialEq)]
pub struct Signal {
    expr: Expression,
    ty: Type,
}

impl Signal {
    /// Wraps an expression with its type.
    pub fn new(expr: Expression, ty: Type) -> Self {
        Self { expr, ty }
    }

    /// An unsigned literal with inferred width, like Chisel's `3.U`.
    pub fn lit(value: u128) -> Self {
        Self::new(Expression::uint_lit(value), Type::UInt(None))
    }

    /// An unsigned literal with explicit width, like `3.U(8.W)`.
    pub fn lit_w(value: u128, width: u32) -> Self {
        Self::new(Expression::uint_lit_w(value, width), Type::uint(width))
    }

    /// A signed literal with explicit width, like `-3.S(8.W)`.
    pub fn slit(value: i128, width: u32) -> Self {
        Self::new(Expression::sint_lit_w(value, width), Type::sint(width))
    }

    /// A boolean literal, like `true.B`.
    pub fn lit_bool(value: bool) -> Self {
        Self::new(Expression::uint_lit(u128::from(value)), Type::Bool)
    }

    /// The underlying expression.
    pub fn expr(&self) -> &Expression {
        &self.expr
    }

    /// Consumes the handle and returns the expression.
    pub fn into_expr(self) -> Expression {
        self.expr
    }

    /// The (best-effort) elaborated type.
    pub fn ty(&self) -> &Type {
        &self.ty
    }

    /// The known width of the signal, if any.
    pub fn width(&self) -> Option<u32> {
        self.ty.width()
    }

    fn prim(&self, op: PrimOp, args: Vec<Expression>, params: Vec<i64>, ty: Type) -> Signal {
        Signal::new(Expression::prim(op, args, params), ty)
    }

    fn binary_width(&self, other: &Signal, grow: u32) -> Option<u32> {
        match (self.width(), other.width()) {
            (Some(a), Some(b)) => Some(a.max(b) + grow),
            _ => None,
        }
    }

    // --- arithmetic ------------------------------------------------------------------

    /// Expanding addition (`+&`).
    pub fn add(&self, other: &Signal) -> Signal {
        let ty = if self.ty.is_signed() || other.ty.is_signed() {
            Type::SInt(self.binary_width(other, 1))
        } else {
            Type::UInt(self.binary_width(other, 1))
        };
        self.prim(PrimOp::Add, vec![self.expr.clone(), other.expr.clone()], vec![], ty)
    }

    /// Expanding subtraction (`-&`).
    pub fn sub(&self, other: &Signal) -> Signal {
        let ty = if self.ty.is_signed() || other.ty.is_signed() {
            Type::SInt(self.binary_width(other, 1))
        } else {
            Type::UInt(self.binary_width(other, 1))
        };
        self.prim(PrimOp::Sub, vec![self.expr.clone(), other.expr.clone()], vec![], ty)
    }

    /// Multiplication.
    pub fn mul(&self, other: &Signal) -> Signal {
        let width = match (self.width(), other.width()) {
            (Some(a), Some(b)) => Some(a + b),
            _ => None,
        };
        let ty = if self.ty.is_signed() || other.ty.is_signed() {
            Type::SInt(width)
        } else {
            Type::UInt(width)
        };
        self.prim(PrimOp::Mul, vec![self.expr.clone(), other.expr.clone()], vec![], ty)
    }

    /// Division.
    pub fn div(&self, other: &Signal) -> Signal {
        self.prim(PrimOp::Div, vec![self.expr.clone(), other.expr.clone()], vec![], self.ty.clone())
    }

    /// Remainder.
    pub fn rem(&self, other: &Signal) -> Signal {
        self.prim(PrimOp::Rem, vec![self.expr.clone(), other.expr.clone()], vec![], self.ty.clone())
    }

    /// Arithmetic negation.
    pub fn neg(&self) -> Signal {
        self.prim(
            PrimOp::Neg,
            vec![self.expr.clone()],
            vec![],
            Type::SInt(self.width().map(|w| w + 1)),
        )
    }

    // --- bitwise ---------------------------------------------------------------------

    /// Bitwise and.
    pub fn and(&self, other: &Signal) -> Signal {
        let ty = self.bitwise_result(other);
        self.prim(PrimOp::And, vec![self.expr.clone(), other.expr.clone()], vec![], ty)
    }

    /// Bitwise or.
    pub fn or(&self, other: &Signal) -> Signal {
        let ty = self.bitwise_result(other);
        self.prim(PrimOp::Or, vec![self.expr.clone(), other.expr.clone()], vec![], ty)
    }

    /// Bitwise xor.
    pub fn xor(&self, other: &Signal) -> Signal {
        let ty = self.bitwise_result(other);
        self.prim(PrimOp::Xor, vec![self.expr.clone(), other.expr.clone()], vec![], ty)
    }

    /// Bitwise not.
    pub fn not(&self) -> Signal {
        self.prim(PrimOp::Not, vec![self.expr.clone()], vec![], self.ty.clone())
    }

    fn bitwise_result(&self, other: &Signal) -> Type {
        if matches!(self.ty, Type::Bool) && matches!(other.ty, Type::Bool) {
            Type::Bool
        } else {
            Type::UInt(self.binary_width(other, 0))
        }
    }

    // --- comparisons -----------------------------------------------------------------

    /// Equality (`===`).
    pub fn eq(&self, other: &Signal) -> Signal {
        self.prim(PrimOp::Eq, vec![self.expr.clone(), other.expr.clone()], vec![], Type::Bool)
    }

    /// Inequality (`=/=`).
    pub fn neq(&self, other: &Signal) -> Signal {
        self.prim(PrimOp::Neq, vec![self.expr.clone(), other.expr.clone()], vec![], Type::Bool)
    }

    /// Less-than.
    pub fn lt(&self, other: &Signal) -> Signal {
        self.prim(PrimOp::Lt, vec![self.expr.clone(), other.expr.clone()], vec![], Type::Bool)
    }

    /// Less-than-or-equal.
    pub fn leq(&self, other: &Signal) -> Signal {
        self.prim(PrimOp::Leq, vec![self.expr.clone(), other.expr.clone()], vec![], Type::Bool)
    }

    /// Greater-than.
    pub fn gt(&self, other: &Signal) -> Signal {
        self.prim(PrimOp::Gt, vec![self.expr.clone(), other.expr.clone()], vec![], Type::Bool)
    }

    /// Greater-than-or-equal.
    pub fn geq(&self, other: &Signal) -> Signal {
        self.prim(PrimOp::Geq, vec![self.expr.clone(), other.expr.clone()], vec![], Type::Bool)
    }

    // --- shifts ----------------------------------------------------------------------

    /// Static left shift.
    pub fn shl(&self, amount: u32) -> Signal {
        self.prim(
            PrimOp::Shl,
            vec![self.expr.clone()],
            vec![amount as i64],
            Type::UInt(self.width().map(|w| w + amount)),
        )
    }

    /// Static right shift.
    pub fn shr(&self, amount: u32) -> Signal {
        self.prim(
            PrimOp::Shr,
            vec![self.expr.clone()],
            vec![amount as i64],
            Type::UInt(self.width().map(|w| w.saturating_sub(amount).max(1))),
        )
    }

    /// Dynamic left shift.
    pub fn dshl(&self, amount: &Signal) -> Signal {
        self.prim(
            PrimOp::Dshl,
            vec![self.expr.clone(), amount.expr.clone()],
            vec![],
            Type::UInt(None),
        )
    }

    /// Dynamic right shift.
    pub fn dshr(&self, amount: &Signal) -> Signal {
        self.prim(
            PrimOp::Dshr,
            vec![self.expr.clone(), amount.expr.clone()],
            vec![],
            self.ty.clone(),
        )
    }

    // --- bit manipulation ------------------------------------------------------------

    /// Concatenation, `self` in the high bits (like `Cat(self, low)`).
    pub fn cat(&self, low: &Signal) -> Signal {
        let width = match (self.width(), low.width()) {
            (Some(a), Some(b)) => Some(a + b),
            _ => None,
        };
        self.prim(PrimOp::Cat, vec![self.expr.clone(), low.expr.clone()], vec![], Type::UInt(width))
    }

    /// Bit extraction `self(hi, lo)`.
    pub fn bits(&self, hi: u32, lo: u32) -> Signal {
        self.prim(
            PrimOp::Bits,
            vec![self.expr.clone()],
            vec![hi as i64, lo as i64],
            Type::uint(hi.saturating_sub(lo) + 1),
        )
    }

    /// Single-bit extraction `self(i)` on a `UInt`, or element access on a `Vec`.
    pub fn bit(&self, index: i64) -> Signal {
        match &self.ty {
            Type::Vec(elem, _) => Signal::new(
                Expression::SubIndex(Box::new(self.expr.clone()), index),
                (**elem).clone(),
            ),
            _ => Signal::new(Expression::SubIndex(Box::new(self.expr.clone()), index), Type::Bool),
        }
    }

    /// Static element access on a `Vec` (alias of [`Signal::bit`] that reads better for
    /// vectors).
    pub fn index(&self, index: i64) -> Signal {
        self.bit(index)
    }

    /// Dynamic element access `self(idx)`.
    pub fn index_dyn(&self, index: &Signal) -> Signal {
        let elem_ty = match &self.ty {
            Type::Vec(elem, _) => (**elem).clone(),
            _ => Type::Bool,
        };
        Signal::new(
            Expression::SubAccess(Box::new(self.expr.clone()), Box::new(index.expr.clone())),
            elem_ty,
        )
    }

    /// Bundle field access `self.field`.
    pub fn field(&self, name: &str) -> Signal {
        let field_ty = match &self.ty {
            Type::Bundle(fields) => fields
                .iter()
                .find(|f| f.name == name)
                .map(|f| f.ty.clone())
                .unwrap_or(Type::UInt(None)),
            _ => Type::UInt(None),
        };
        Signal::new(Expression::SubField(Box::new(self.expr.clone()), name.to_string()), field_ty)
    }

    // --- reductions ------------------------------------------------------------------

    /// And-reduction.
    pub fn and_r(&self) -> Signal {
        self.prim(PrimOp::AndR, vec![self.expr.clone()], vec![], Type::Bool)
    }

    /// Or-reduction.
    pub fn or_r(&self) -> Signal {
        self.prim(PrimOp::OrR, vec![self.expr.clone()], vec![], Type::Bool)
    }

    /// Xor-reduction (parity).
    pub fn xor_r(&self) -> Signal {
        self.prim(PrimOp::XorR, vec![self.expr.clone()], vec![], Type::Bool)
    }

    // --- casts -----------------------------------------------------------------------

    /// Reinterpret as `UInt` (`.asUInt`).
    pub fn as_uint(&self) -> Signal {
        self.prim(PrimOp::AsUInt, vec![self.expr.clone()], vec![], Type::UInt(self.ty.width()))
    }

    /// Reinterpret as `SInt` (`.asSInt`).
    pub fn as_sint(&self) -> Signal {
        self.prim(PrimOp::AsSInt, vec![self.expr.clone()], vec![], Type::SInt(self.ty.width()))
    }

    /// Reinterpret as `Bool` (`.asBool`).
    pub fn as_bool(&self) -> Signal {
        self.prim(PrimOp::AsBool, vec![self.expr.clone()], vec![], Type::Bool)
    }

    /// Reinterpret as a clock (`.asClock`).
    pub fn as_clock(&self) -> Signal {
        self.prim(PrimOp::AsClock, vec![self.expr.clone()], vec![], Type::Clock)
    }

    /// Reinterpret as an asynchronous reset (`.asAsyncReset`).
    pub fn as_async_reset(&self) -> Signal {
        self.prim(PrimOp::AsAsyncReset, vec![self.expr.clone()], vec![], Type::AsyncReset)
    }

    /// Zero/sign extension to at least `width` bits (`.pad`).
    pub fn pad(&self, width: u32) -> Signal {
        let ty = if self.ty.is_signed() {
            Type::SInt(Some(self.width().unwrap_or(width).max(width)))
        } else {
            Type::UInt(Some(self.width().unwrap_or(width).max(width)))
        };
        self.prim(PrimOp::Pad, vec![self.expr.clone()], vec![width as i64], ty)
    }

    /// Drops the `n` most significant bits (`.tail`).
    pub fn tail(&self, n: u32) -> Signal {
        self.prim(
            PrimOp::Tail,
            vec![self.expr.clone()],
            vec![n as i64],
            Type::UInt(self.width().map(|w| w.saturating_sub(n).max(1))),
        )
    }

    // --- selection -------------------------------------------------------------------

    /// Two-way multiplexer, `Mux(self, on_true, on_false)` where `self` is the select.
    pub fn mux(&self, on_true: &Signal, on_false: &Signal) -> Signal {
        Signal::new(
            Expression::mux(self.expr.clone(), on_true.expr.clone(), on_false.expr.clone()),
            on_true.ty.clone(),
        )
    }
}

/// Builds a Chisel `Mux(sel, a, b)`.
pub fn mux(sel: &Signal, on_true: &Signal, on_false: &Signal) -> Signal {
    sel.mux(on_true, on_false)
}

/// Builds a priority mux (`MuxCase`): the first matching condition wins, `default`
/// otherwise.
pub fn mux_case(default: &Signal, cases: &[(Signal, Signal)]) -> Signal {
    let mut acc = default.clone();
    for (cond, value) in cases.iter().rev() {
        acc = cond.mux(value, &acc);
    }
    acc
}

/// Concatenates signals, first element in the most-significant position (like Chisel's
/// `Cat(...)`).
///
/// # Panics
///
/// Panics when `signals` is empty.
pub fn cat_all(signals: &[Signal]) -> Signal {
    assert!(!signals.is_empty(), "cat_all requires at least one signal");
    let mut iter = signals.iter();
    let mut acc = iter.next().expect("non-empty").clone();
    for s in iter {
        acc = acc.cat(s);
    }
    acc
}

/// Reduces a slice of signals with a binary operation, left to right.
///
/// # Panics
///
/// Panics when `signals` is empty.
pub fn reduce(signals: &[Signal], f: impl Fn(&Signal, &Signal) -> Signal) -> Signal {
    assert!(!signals.is_empty(), "reduce requires at least one signal");
    let mut iter = signals.iter();
    let mut acc = iter.next().expect("non-empty").clone();
    for s in iter {
        acc = f(&acc, s);
    }
    acc
}

/// Population count: the number of asserted bits among `bits`.
pub fn pop_count(bits: &[Signal]) -> Signal {
    assert!(!bits.is_empty(), "pop_count requires at least one signal");
    let padded: Vec<Signal> = bits.iter().map(|b| b.as_uint()).collect();
    reduce(&padded, |a, b| a.add(b))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn literal_types() {
        assert_eq!(Signal::lit_w(5, 4).ty(), &Type::uint(4));
        assert_eq!(Signal::lit_bool(true).ty(), &Type::Bool);
        assert_eq!(Signal::slit(-2, 4).ty(), &Type::sint(4));
    }

    #[test]
    fn arithmetic_widths_grow() {
        let a = Signal::lit_w(3, 4);
        let b = Signal::lit_w(5, 4);
        assert_eq!(a.add(&b).width(), Some(5));
        assert_eq!(a.mul(&b).width(), Some(8));
        assert_eq!(a.sub(&b).width(), Some(5));
    }

    #[test]
    fn comparisons_are_bool() {
        let a = Signal::lit_w(3, 4);
        let b = Signal::lit_w(5, 4);
        assert_eq!(a.eq(&b).ty(), &Type::Bool);
        assert_eq!(a.lt(&b).ty(), &Type::Bool);
    }

    #[test]
    fn cat_and_bits() {
        let a = Signal::lit_w(1, 2);
        let b = Signal::lit_w(2, 3);
        assert_eq!(a.cat(&b).width(), Some(5));
        assert_eq!(a.bits(1, 0).width(), Some(2));
    }

    #[test]
    fn vector_indexing_preserves_element_type() {
        let v = Signal::new(Expression::reference("v"), Type::vec(Type::uint(8), 4));
        assert_eq!(v.index(2).ty(), &Type::uint(8));
        let i = Signal::lit_w(1, 2);
        assert_eq!(v.index_dyn(&i).ty(), &Type::uint(8));
    }

    #[test]
    fn mux_case_priority_order() {
        let d = Signal::lit_w(0, 4);
        let c1 = Signal::lit_bool(false);
        let v1 = Signal::lit_w(1, 4);
        let out = mux_case(&d, &[(c1, v1)]);
        assert!(matches!(out.expr(), Expression::Mux { .. }));
    }

    #[test]
    fn cat_all_order() {
        let bits = vec![Signal::lit_bool(true), Signal::lit_bool(false), Signal::lit_bool(true)];
        let c = cat_all(&bits);
        // Nested Cat expressions.
        assert!(matches!(c.expr(), Expression::Prim { op: PrimOp::Cat, .. }));
    }

    #[test]
    fn pop_count_builds_adder_tree() {
        let bits = vec![Signal::lit_bool(true); 4];
        let c = pop_count(&bits);
        assert!(matches!(c.expr(), Expression::Prim { op: PrimOp::Add, .. }));
    }

    #[test]
    #[should_panic(expected = "requires at least one signal")]
    fn cat_all_empty_panics() {
        cat_all(&[]);
    }
}
