//! The module builder: a Chisel-flavoured construction API that records hardware into
//! the `rechisel-firrtl` IR.
//!
//! A [`ModuleBuilder`] plays the role of a Chisel `Module` body: IOs, wires, registers,
//! `when`/`switch` blocks and connections are declared imperatively and recorded as IR
//! statements with synthetic source locations (so that compiler diagnostics point at
//! meaningful "lines" exactly like the sbt output quoted in the ReChisel paper).

use rechisel_firrtl::ir::{
    Circuit, ClockSpec, Direction, Expression, Module, ModuleKind, Port, ReadUnderWrite, RegReset,
    SourceInfo, Statement, Type,
};

use crate::signal::Signal;

/// Builds one hardware module.
#[derive(Debug)]
pub struct ModuleBuilder {
    module: Module,
    /// Stack of statement buffers: the last entry receives new statements (innermost
    /// `when` scope).
    scopes: Vec<Vec<Statement>>,
    /// Clock override stack for `with_clock`.
    clocks: Vec<Expression>,
    /// Reset override stack for `with_reset` / `with_clock_and_reset`.
    resets: Vec<Expression>,
    /// Synthetic source file name.
    file: String,
    /// Synthetic line counter.
    line: u32,
}

impl ModuleBuilder {
    /// Starts a `Module` (with implicit `clock` and `reset` ports).
    pub fn new(name: impl Into<String>) -> Self {
        let name = name.into();
        let file = format!("{name}.scala");
        let mut module = Module::new(name, ModuleKind::Module);
        module.ports.push(Port {
            name: "clock".into(),
            direction: Direction::Input,
            ty: Type::Clock,
            info: SourceInfo::new(&file, 1, 1),
        });
        module.ports.push(Port {
            name: "reset".into(),
            direction: Direction::Input,
            ty: Type::bool(),
            info: SourceInfo::new(&file, 1, 1),
        });
        Self {
            module,
            scopes: vec![Vec::new()],
            clocks: Vec::new(),
            resets: Vec::new(),
            file,
            line: 1,
        }
    }

    /// Starts a `RawModule` (no implicit clock or reset).
    pub fn raw(name: impl Into<String>) -> Self {
        let name = name.into();
        let file = format!("{name}.scala");
        Self {
            module: Module::new(name, ModuleKind::RawModule),
            scopes: vec![Vec::new()],
            clocks: Vec::new(),
            resets: Vec::new(),
            file,
            line: 1,
        }
    }

    /// The module name.
    pub fn name(&self) -> &str {
        &self.module.name
    }

    fn next_info(&mut self) -> SourceInfo {
        self.line += 1;
        SourceInfo::new(&self.file, self.line, 3)
    }

    fn push(&mut self, stmt: Statement) {
        self.scopes.last_mut().expect("at least one scope").push(stmt);
    }

    // --- ports -----------------------------------------------------------------------

    /// Declares an input port and returns its signal.
    pub fn input(&mut self, name: &str, ty: Type) -> Signal {
        let info = self.next_info();
        self.module.ports.push(Port {
            name: name.to_string(),
            direction: Direction::Input,
            ty: ty.clone(),
            info,
        });
        Signal::new(Expression::reference(name), ty)
    }

    /// Declares an output port and returns its signal.
    pub fn output(&mut self, name: &str, ty: Type) -> Signal {
        let info = self.next_info();
        self.module.ports.push(Port {
            name: name.to_string(),
            direction: Direction::Output,
            ty: ty.clone(),
            info,
        });
        Signal::new(Expression::reference(name), ty)
    }

    /// The implicit clock signal.
    pub fn clock(&self) -> Signal {
        Signal::new(Expression::reference("clock"), Type::Clock)
    }

    /// The implicit reset signal.
    pub fn reset(&self) -> Signal {
        Signal::new(Expression::reference("reset"), Type::bool())
    }

    // --- declarations ----------------------------------------------------------------

    /// Declares a wire.
    pub fn wire(&mut self, name: &str, ty: Type) -> Signal {
        let info = self.next_info();
        self.push(Statement::Wire { name: name.to_string(), ty: ty.clone(), info });
        Signal::new(Expression::reference(name), ty)
    }

    /// Declares a wire with a default value (`WireDefault`).
    pub fn wire_default(&mut self, name: &str, ty: Type, default: &Signal) -> Signal {
        let sig = self.wire(name, ty);
        self.connect(&sig, default);
        sig
    }

    /// Declares a register without reset (`Reg`).
    pub fn reg(&mut self, name: &str, ty: Type) -> Signal {
        let info = self.next_info();
        let clock = self.current_clock();
        self.push(Statement::Reg {
            name: name.to_string(),
            ty: ty.clone(),
            clock,
            reset: None,
            info,
        });
        Signal::new(Expression::reference(name), ty)
    }

    /// Declares a register with a reset value (`RegInit`).
    pub fn reg_init(&mut self, name: &str, ty: Type, init: &Signal) -> Signal {
        let info = self.next_info();
        let clock = self.current_clock();
        self.push(Statement::Reg {
            name: name.to_string(),
            ty: ty.clone(),
            clock,
            reset: Some(RegReset { reset: self.current_reset(), init: init.expr().clone() }),
            info,
        });
        Signal::new(Expression::reference(name), ty)
    }

    /// Declares a register that follows `next` every cycle (`RegNext`).
    pub fn reg_next(&mut self, name: &str, ty: Type, next: &Signal) -> Signal {
        let reg = self.reg(name, ty);
        self.connect(&reg, next);
        reg
    }

    /// Declares a register that follows `next` and resets to `init` (`RegNext` with
    /// init, or `RegEnable`-style patterns built on top).
    pub fn reg_next_init(&mut self, name: &str, ty: Type, next: &Signal, init: &Signal) -> Signal {
        let reg = self.reg_init(name, ty, init);
        self.connect(&reg, next);
        reg
    }

    /// Declares a memory (`Mem(depth, ty)`) and returns its handle.
    ///
    /// Reads ([`Mem::read`]) are combinational and sequential reads
    /// ([`Mem::read_sync`]) are registered; writes ([`ModuleBuilder::mem_write`],
    /// [`ModuleBuilder::mem_write_masked`]) are synchronous and commit together with
    /// register updates, so a read in the same cycle as a write to the same address
    /// returns the **old** data (the default read-under-write policy; see
    /// [`ModuleBuilder::mem_with_ruw`] for the others). The backing store starts at
    /// zero unless initialized with [`ModuleBuilder::mem_init`] /
    /// [`ModuleBuilder::mem_init_file`].
    pub fn mem(&mut self, name: &str, elem_ty: Type, depth: usize) -> Mem {
        self.mem_with_ruw(name, elem_ty, depth, ReadUnderWrite::Old)
    }

    /// Declares a memory with an explicit read-under-write policy, like
    /// `SyncReadMem(depth, ty, SyncReadMem.WriteFirst)`.
    ///
    /// The policy arbitrates a sequential read that captures an address being written
    /// **on the same clock edge in the same domain**: `Old` captures the pre-write
    /// word, `New` forwards the freshly written data (write-first), and `Undefined`
    /// captures a deterministic zero (our model of "don't rely on this"). Writes in a
    /// different clock domain never forward — a cross-domain collision always reads
    /// old data.
    pub fn mem_with_ruw(
        &mut self,
        name: &str,
        elem_ty: Type,
        depth: usize,
        ruw: ReadUnderWrite,
    ) -> Mem {
        let info = self.next_info();
        self.push(Statement::Mem {
            name: name.to_string(),
            ty: elem_ty.clone(),
            depth,
            init: None,
            ruw,
            info,
        });
        Mem { name: name.to_string(), elem_ty, depth }
    }

    /// Adds a synchronous write port to a memory (`mem.write(addr, data)`).
    ///
    /// A write inside a [`ModuleBuilder::when`] scope is enabled only on the paths
    /// that reach it, exactly like a conditional register update. A write inside a
    /// [`ModuleBuilder::with_clock`] scope belongs to that clock domain — ports of
    /// one memory may sit in different domains (the emitted Verilog keeps one
    /// `always` block per domain, and the simulators edge each domain independently:
    /// `step_clock(domain)` advances one domain, `step()` advances all of them
    /// together for single-clock convenience).
    pub fn mem_write(&mut self, mem: &Mem, addr: &Signal, value: &Signal) {
        let info = self.next_info();
        let clock = self.current_clock();
        self.push(Statement::MemWrite {
            mem: mem.name.clone(),
            addr: addr.expr().clone(),
            value: value.expr().clone(),
            mask: None,
            clock,
            info,
        });
    }

    /// Adds a lane-masked synchronous write port (`mem.write(addr, data, mask)`).
    ///
    /// The mask carries **one bit per data bit** (mask width = word width): at the
    /// clock edge only the lanes whose mask bit is set take the new data, the other
    /// lanes keep the old word. Byte enables are expressed by fanning each enable bit
    /// across its 8 data bits.
    ///
    /// ```
    /// use rechisel_hcl::prelude::*;
    ///
    /// let mut m = ModuleBuilder::new("MaskedRam");
    /// let addr = m.input("addr", Type::uint(2));
    /// let data = m.input("data", Type::uint(8));
    /// let mask = m.input("mask", Type::uint(8)); // one enable bit per data bit
    /// let q = m.output("q", Type::uint(8));
    /// let mem = m.mem("store", Type::uint(8), 4);
    /// m.mem_write_masked(&mem, &addr, &data, &mask);
    /// m.connect(&q, &mem.read(&addr));
    /// assert!(!rechisel_firrtl::check_circuit(&m.into_circuit()).has_errors());
    /// ```
    pub fn mem_write_masked(&mut self, mem: &Mem, addr: &Signal, value: &Signal, mask: &Signal) {
        let info = self.next_info();
        let clock = self.current_clock();
        self.push(Statement::MemWrite {
            mem: mem.name.clone(),
            addr: addr.expr().clone(),
            value: value.expr().clone(),
            mask: Some(mask.expr().clone()),
            clock,
            info,
        });
    }

    /// A sequential read port with an optional read enable, clocked by the current
    /// clock scope (`mem.read(addr, en)` on a `SyncReadMem` under `withClock`).
    ///
    /// Unlike [`Mem::read_sync`] — which always latches on the module's implicit
    /// clock — this port belongs to the [`ModuleBuilder::with_clock`] domain active at
    /// the call site, so a dual-clock memory can be written in one domain and read in
    /// another. When `en` is given, the port captures a new word only on edges where
    /// the enable is high; on disabled edges it holds the previously captured word
    /// (our deterministic rendering of Chisel's "undefined when disabled").
    pub fn mem_read_sync(&mut self, mem: &Mem, addr: &Signal, en: Option<&Signal>) -> Signal {
        let clock = match self.current_clock() {
            ClockSpec::Implicit => None,
            ClockSpec::Explicit(e) => Some(Box::new(e)),
        };
        Signal::new(
            Expression::MemRead {
                mem: mem.name.clone(),
                addr: Box::new(addr.expr().clone()),
                sync: true,
                en: en.map(|s| Box::new(s.expr().clone())),
                clock,
            },
            mem.elem_ty.clone(),
        )
    }

    /// Sets a memory's initial contents (the `loadMemoryFromFile` equivalent with an
    /// inline image): word `i` starts as `words[i]`, words beyond the image start as
    /// zero. The elaboration passes reject images longer than the depth and words
    /// wider than the memory word.
    ///
    /// Initialization applies at time zero only; asserting `reset` does **not**
    /// restore the image.
    ///
    /// # Panics
    ///
    /// Panics when `mem` was not declared by **this** builder (e.g. a handle from
    /// another module): silently dropping the image would elaborate a wrong, all-zero
    /// memory.
    pub fn mem_init(&mut self, mem: &Mem, words: &[u64]) {
        fn set_init(stmts: &mut [Statement], target: &str, words: &[u64]) -> bool {
            stmts.iter_mut().any(|stmt| match stmt {
                Statement::Mem { name, init, .. } if name == target => {
                    *init = Some(words.iter().map(|w| u128::from(*w)).collect());
                    true
                }
                Statement::When { then_body, else_body, .. } => {
                    set_init(then_body, target, words) || set_init(else_body, target, words)
                }
                _ => false,
            })
        }
        let found = self.scopes.iter_mut().rev().any(|scope| set_init(scope, mem.name(), words));
        assert!(
            found,
            "mem_init: memory {} is not declared in this builder (wrong Mem handle?)",
            mem.name()
        );
    }

    /// Loads a memory's initial contents from a `$readmemh`-style hex file: one word
    /// per line, `//` comments and blank lines ignored.
    ///
    /// # Errors
    ///
    /// Returns the underlying I/O error when the file cannot be read, and
    /// [`std::io::ErrorKind::InvalidData`] when a line is not a hexadecimal word.
    ///
    /// # Panics
    ///
    /// Like [`ModuleBuilder::mem_init`], panics when `mem` was not declared by this
    /// builder.
    pub fn mem_init_file(
        &mut self,
        mem: &Mem,
        path: impl AsRef<std::path::Path>,
    ) -> std::io::Result<()> {
        let text = std::fs::read_to_string(path)?;
        let mut words = Vec::new();
        for (index, line) in text.lines().enumerate() {
            let word = line.split("//").next().unwrap_or("").trim();
            if word.is_empty() {
                continue;
            }
            let parsed = u64::from_str_radix(word, 16).map_err(|e| {
                std::io::Error::new(
                    std::io::ErrorKind::InvalidData,
                    format!("line {}: {word:?} is not a hex word: {e}", index + 1),
                )
            })?;
            words.push(parsed);
        }
        self.mem_init(mem, &words);
        Ok(())
    }

    /// Declares a named intermediate value (`val x = <expr>`).
    pub fn node(&mut self, name: &str, value: &Signal) -> Signal {
        let info = self.next_info();
        self.push(Statement::Node { name: name.to_string(), value: value.expr().clone(), info });
        Signal::new(Expression::reference(name), value.ty().clone())
    }

    /// Declares a wire of `Vec` type initialized element-wise from `elements`
    /// (`VecInit(...)`).
    pub fn vec_init(&mut self, name: &str, elem_ty: Type, elements: &[Signal]) -> Signal {
        let ty = Type::vec(elem_ty, elements.len());
        let vec = self.wire(name, ty);
        for (i, e) in elements.iter().enumerate() {
            let slot = vec.index(i as i64);
            self.connect(&slot, e);
        }
        vec
    }

    /// Instantiates a child module and returns a bundle-typed handle whose fields are
    /// the child's ports.
    pub fn instance(&mut self, name: &str, child: &Module) -> Signal {
        let info = self.next_info();
        self.push(Statement::Instance { name: name.to_string(), module: child.name.clone(), info });
        let ty = rechisel_firrtl::typeenv::instance_bundle_type(child);
        Signal::new(Expression::reference(name), ty)
    }

    // --- connections and control flow --------------------------------------------------

    /// Connects `sink := source`.
    pub fn connect(&mut self, sink: &Signal, source: &Signal) {
        let info = self.next_info();
        self.push(Statement::Connect {
            loc: sink.expr().clone(),
            expr: source.expr().clone(),
            info,
        });
    }

    /// Marks a sink as intentionally unconnected (`sink := DontCare`).
    pub fn dont_care(&mut self, sink: &Signal) {
        let info = self.next_info();
        self.push(Statement::Invalidate { loc: sink.expr().clone(), info });
    }

    /// A conditional block without an `otherwise` branch.
    pub fn when(&mut self, cond: &Signal, then_f: impl FnOnce(&mut Self)) {
        self.when_else(cond, then_f, |_| {});
    }

    /// A conditional block with both branches (`when { ... } .otherwise { ... }`).
    pub fn when_else(
        &mut self,
        cond: &Signal,
        then_f: impl FnOnce(&mut Self),
        else_f: impl FnOnce(&mut Self),
    ) {
        let info = self.next_info();
        self.scopes.push(Vec::new());
        then_f(self);
        let then_body = self.scopes.pop().expect("then scope");
        self.scopes.push(Vec::new());
        else_f(self);
        let else_body = self.scopes.pop().expect("else scope");
        self.push(Statement::When { cond: cond.expr().clone(), then_body, else_body, info });
    }

    /// A `switch(sel) { is(...) { ... } }` block. Arms are matched in order with
    /// equality comparisons; an optional default arm is set with
    /// [`SwitchBuilder::default`].
    pub fn switch(&mut self, sel: &Signal, f: impl FnOnce(&mut SwitchBuilder<'_>)) {
        let mut sw =
            SwitchBuilder { builder: self, sel: sel.clone(), arms: Vec::new(), default: None };
        f(&mut sw);
        sw.finish();
    }

    /// Overrides the implicit clock for registers declared inside `f` (`withClock`).
    pub fn with_clock(&mut self, clock: &Signal, f: impl FnOnce(&mut Self)) {
        self.clocks.push(clock.expr().clone());
        f(self);
        self.clocks.pop();
    }

    /// Overrides the reset net used by `reg_init`-style registers declared inside
    /// `f` (`withReset`): their [`RegReset`] references `reset` instead of the
    /// implicit `"reset"` port, so the register only takes its init value when that
    /// net is asserted on its own clock edge.
    pub fn with_reset(&mut self, reset: &Signal, f: impl FnOnce(&mut Self)) {
        self.resets.push(reset.expr().clone());
        f(self);
        self.resets.pop();
    }

    /// Overrides both the clock and the reset for registers declared inside `f`
    /// (`withClockAndReset`) — the Chisel idiom for a CDC island with its own
    /// synchronized reset.
    pub fn with_clock_and_reset(
        &mut self,
        clock: &Signal,
        reset: &Signal,
        f: impl FnOnce(&mut Self),
    ) {
        self.clocks.push(clock.expr().clone());
        self.resets.push(reset.expr().clone());
        f(self);
        self.resets.pop();
        self.clocks.pop();
    }

    fn current_clock(&self) -> ClockSpec {
        match self.clocks.last() {
            Some(e) => ClockSpec::Explicit(e.clone()),
            None => ClockSpec::Implicit,
        }
    }

    fn current_reset(&self) -> Expression {
        match self.resets.last() {
            Some(e) => e.clone(),
            None => Expression::reference("reset"),
        }
    }

    // --- finishing -------------------------------------------------------------------

    /// Finishes the module.
    pub fn finish(mut self) -> Module {
        let body = self.scopes.pop().expect("root scope");
        assert!(self.scopes.is_empty(), "unbalanced when scopes");
        self.module.body = body;
        self.module
    }

    /// Finishes the module and wraps it in a single-module circuit.
    pub fn into_circuit(self) -> Circuit {
        Circuit::single(self.finish())
    }
}

/// Handle to a memory declared with [`ModuleBuilder::mem`].
///
/// The handle is a pure description (name, element type, depth); reads build
/// expressions and writes are recorded through the builder, mirroring how Chisel's
/// `Mem` is used.
#[derive(Debug, Clone, PartialEq)]
pub struct Mem {
    name: String,
    elem_ty: Type,
    depth: usize,
}

impl Mem {
    /// The declared name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The element (word) type.
    pub fn elem_ty(&self) -> &Type {
        &self.elem_ty
    }

    /// Number of words.
    pub fn depth(&self) -> usize {
        self.depth
    }

    /// Minimum address width in bits for this depth.
    pub fn addr_width(&self) -> u32 {
        (usize::BITS - self.depth.saturating_sub(1).leading_zeros()).max(1)
    }

    /// A combinational read port at `addr` (`mem.read(addr)`): returns the current
    /// contents of the addressed word; out-of-range addresses read as zero.
    pub fn read(&self, addr: &Signal) -> Signal {
        Signal::new(Expression::mem_read(&self.name, addr.expr().clone()), self.elem_ty.clone())
    }

    /// A sequential (1-cycle registered) read port at `addr`, like reading a
    /// `SyncReadMem`: the addressed word is captured at each clock edge and visible
    /// one cycle later. Read-under-write follows the memory's declared policy
    /// ([`ModuleBuilder::mem_with_ruw`]; the default returns the **old** data). The
    /// implicit read register uses the module's implicit clock; out-of-range addresses
    /// capture zero. For a port with a read enable or an explicit read clock, use
    /// [`ModuleBuilder::mem_read_sync`] instead.
    ///
    /// Peeking a signal fed by a sequential read before the first edge of the port's
    /// clock domain is a simulation error (`SyncReadBeforeClock`) on every engine:
    /// the register has never captured a word.
    pub fn read_sync(&self, addr: &Signal) -> Signal {
        Signal::new(
            Expression::mem_read_sync(&self.name, addr.expr().clone()),
            self.elem_ty.clone(),
        )
    }
}

/// Collects the arms of a [`ModuleBuilder::switch`] block.
pub struct SwitchBuilder<'a> {
    builder: &'a mut ModuleBuilder,
    sel: Signal,
    arms: Vec<(u128, Vec<Statement>)>,
    default: Option<Vec<Statement>>,
}

impl<'a> SwitchBuilder<'a> {
    /// Adds an `is(value) { ... }` arm.
    pub fn is(&mut self, value: u128, f: impl FnOnce(&mut ModuleBuilder)) {
        self.builder.scopes.push(Vec::new());
        f(self.builder);
        let body = self.builder.scopes.pop().expect("switch arm scope");
        self.arms.push((value, body));
    }

    /// Sets the default arm (not part of Chisel's `switch`, but our designs use it as a
    /// shorthand for a final `.otherwise`).
    pub fn default(&mut self, f: impl FnOnce(&mut ModuleBuilder)) {
        self.builder.scopes.push(Vec::new());
        f(self.builder);
        let body = self.builder.scopes.pop().expect("switch default scope");
        self.default = Some(body);
    }

    fn finish(self) {
        let SwitchBuilder { builder, sel, arms, default } = self;
        // Build a chain of nested whens: is(v0) else { is(v1) else { ... default } }.
        let mut else_body = default.unwrap_or_default();
        for (value, body) in arms.into_iter().rev() {
            let info = builder.next_info();
            let cond = sel.eq(&Signal::lit(value));
            let when =
                Statement::When { cond: cond.expr().clone(), then_body: body, else_body, info };
            else_body = vec![when];
        }
        for stmt in else_body {
            builder.push(stmt);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rechisel_firrtl::{check_circuit, lower_circuit};

    #[test]
    fn simple_passthrough_builds_and_checks() {
        let mut m = ModuleBuilder::new("Pass");
        let a = m.input("a", Type::uint(8));
        let out = m.output("out", Type::uint(8));
        m.connect(&out, &a);
        let c = m.into_circuit();
        assert!(!check_circuit(&c).has_errors());
        assert!(lower_circuit(&c).is_ok());
    }

    #[test]
    fn when_else_builds_nested_statements() {
        let mut m = ModuleBuilder::new("Sel");
        let sel = m.input("sel", Type::bool());
        let a = m.input("a", Type::uint(4));
        let b = m.input("b", Type::uint(4));
        let out = m.output("out", Type::uint(4));
        m.when_else(&sel, |m| m.connect(&out, &a), |m| m.connect(&out, &b));
        let c = m.into_circuit();
        assert!(!check_circuit(&c).has_errors(), "{:?}", check_circuit(&c));
    }

    #[test]
    fn missing_otherwise_fails_initialization() {
        let mut m = ModuleBuilder::new("Bad");
        let sel = m.input("sel", Type::bool());
        let a = m.input("a", Type::uint(4));
        let out = m.output("out", Type::uint(4));
        m.when(&sel, |m| m.connect(&out, &a));
        let c = m.into_circuit();
        assert!(check_circuit(&c).has_errors());
    }

    #[test]
    fn switch_lowers_to_priority_chain() {
        let mut m = ModuleBuilder::new("Decode");
        let op = m.input("op", Type::uint(2));
        let out = m.output("out", Type::uint(4));
        m.switch(&op, |sw| {
            sw.is(0, |m| m.connect(&out, &Signal::lit_w(1, 4)));
            sw.is(1, |m| m.connect(&out, &Signal::lit_w(2, 4)));
            sw.default(|m| m.connect(&out, &Signal::lit_w(0, 4)));
        });
        let c = m.into_circuit();
        assert!(!check_circuit(&c).has_errors(), "{:?}", check_circuit(&c));
        assert!(lower_circuit(&c).is_ok());
    }

    #[test]
    fn register_counter_checks_clean() {
        let mut m = ModuleBuilder::new("Counter");
        let en = m.input("en", Type::bool());
        let out = m.output("out", Type::uint(8));
        let count = m.reg_init("count", Type::uint(8), &Signal::lit_w(0, 8));
        m.when(&en, |m| {
            let next = count.add(&Signal::lit_w(1, 8)).bits(7, 0);
            m.connect(&count, &next);
        });
        m.connect(&out, &count);
        let c = m.into_circuit();
        assert!(!check_circuit(&c).has_errors(), "{:?}", check_circuit(&c));
        let netlist = lower_circuit(&c).unwrap();
        assert_eq!(netlist.regs.len(), 1);
    }

    #[test]
    fn with_clock_and_reset_overrides_reg_init_nets() {
        let mut m = ModuleBuilder::new("Island");
        let clk_b = m.input("clk_b", Type::Clock);
        let rst_b = m.input("rst_b", Type::bool());
        let out = m.output("out", Type::uint(4));
        m.with_clock_and_reset(&clk_b, &rst_b, |m| {
            let r = m.reg_init("r", Type::uint(4), &Signal::lit_w(0, 4));
            m.connect(&r, &r.add(&Signal::lit_w(1, 4)).bits(3, 0));
            m.connect(&out, &r);
        });
        let c = m.into_circuit();
        assert!(!check_circuit(&c).has_errors(), "{:?}", check_circuit(&c));
        let reg = c.modules[0]
            .body
            .iter()
            .find_map(|s| match s {
                Statement::Reg { clock, reset, .. } => Some((clock.clone(), reset.clone())),
                _ => None,
            })
            .expect("reg recorded");
        assert_eq!(reg.0, ClockSpec::Explicit(Expression::reference("clk_b")));
        let reset = reg.1.expect("reset recorded");
        assert_eq!(reset.reset, Expression::reference("rst_b"));
        // Outside the scope the implicit nets are back.
        let mut m = ModuleBuilder::new("Outer");
        let clk_b = m.input("clk_b", Type::Clock);
        let rst_b = m.input("rst_b", Type::bool());
        m.with_clock_and_reset(&clk_b, &rst_b, |_| {});
        let out = m.output("o", Type::uint(1));
        let r = m.reg_init("r", Type::uint(1), &Signal::lit_w(0, 1));
        m.connect(&r, &r);
        m.connect(&out, &r);
        let c = m.into_circuit();
        let reg = c.modules[0]
            .body
            .iter()
            .find_map(|s| match s {
                Statement::Reg { clock, reset, .. } => Some((clock.clone(), reset.clone())),
                _ => None,
            })
            .expect("reg recorded");
        assert_eq!(reg.0, ClockSpec::Implicit);
        assert_eq!(reg.1.expect("reset").reset, Expression::reference("reset"));
    }

    #[test]
    fn vec_init_covers_all_elements() {
        let mut m = ModuleBuilder::new("VecTest");
        let a = m.input("a", Type::bool());
        let b = m.input("b", Type::bool());
        let out = m.output("out", Type::uint(2));
        let v = m.vec_init("v", Type::bool(), &[a, b]);
        m.connect(&out, &v.as_uint());
        let c = m.into_circuit();
        assert!(!check_circuit(&c).has_errors(), "{:?}", check_circuit(&c));
    }

    #[test]
    fn instance_wiring_checks_clean() {
        let mut child = ModuleBuilder::new("Inv");
        let x = child.input("x", Type::bool());
        let y = child.output("y", Type::bool());
        child.connect(&y, &x.not());
        let child = child.finish();

        let mut top = ModuleBuilder::new("Top");
        let a = top.input("a", Type::bool());
        let out = top.output("out", Type::bool());
        let inv = top.instance("inv", &child);
        top.connect(&inv.field("x"), &a);
        top.connect(&out, &inv.field("y"));
        let top = top.finish();

        let c = Circuit::new("Top", vec![top, child]);
        assert!(!check_circuit(&c).has_errors(), "{:?}", check_circuit(&c));
        assert!(lower_circuit(&c).is_ok());
    }

    #[test]
    fn memory_module_checks_clean_and_lowers() {
        let mut m = ModuleBuilder::new("Ram");
        let we = m.input("we", Type::bool());
        let addr = m.input("addr", Type::uint(3));
        let din = m.input("din", Type::uint(8));
        let dout = m.output("dout", Type::uint(8));
        let mem = m.mem("store", Type::uint(8), 8);
        assert_eq!(mem.name(), "store");
        assert_eq!(mem.depth(), 8);
        assert_eq!(mem.elem_ty(), &Type::uint(8));
        assert_eq!(mem.addr_width(), 3);
        m.when(&we, |m| m.mem_write(&mem, &addr, &din));
        m.connect(&dout, &mem.read(&addr));
        let c = m.into_circuit();
        assert!(!check_circuit(&c).has_errors(), "{:?}", check_circuit(&c));
        let netlist = lower_circuit(&c).unwrap();
        assert_eq!(netlist.mems.len(), 1);
        assert_eq!(netlist.mems[0].depth, 8);
        assert_eq!(netlist.mems[0].writes.len(), 1);
    }

    #[test]
    fn memory_read_out_of_range_literal_rejected() {
        let mut m = ModuleBuilder::new("BadRead");
        let dout = m.output("dout", Type::uint(8));
        let mem = m.mem("store", Type::uint(8), 8);
        m.connect(&dout, &mem.read(&Signal::lit_w(8, 4)));
        let report = check_circuit(&m.into_circuit());
        assert!(
            report.errors().any(|d| d.code == rechisel_firrtl::ErrorCode::IndexOutOfBounds),
            "{report:?}"
        );
    }

    #[test]
    fn memory_write_out_of_range_literal_rejected() {
        let mut m = ModuleBuilder::new("BadWrite");
        let din = m.input("din", Type::uint(8));
        let dout = m.output("dout", Type::uint(8));
        let mem = m.mem("store", Type::uint(8), 8);
        m.mem_write(&mem, &Signal::lit_w(9, 4), &din);
        m.connect(&dout, &mem.read(&Signal::lit_w(0, 3)));
        let report = check_circuit(&m.into_circuit());
        assert!(
            report.errors().any(|d| d.code == rechisel_firrtl::ErrorCode::IndexOutOfBounds),
            "{report:?}"
        );
    }

    #[test]
    fn memory_write_with_mismatched_width_rejected() {
        let mut m = ModuleBuilder::new("WideWrite");
        let addr = m.input("addr", Type::uint(3));
        let din = m.input("din", Type::uint(12));
        let dout = m.output("dout", Type::uint(8));
        let mem = m.mem("store", Type::uint(8), 8);
        // 12-bit data into an 8-bit word: rejected, not silently truncated.
        m.mem_write(&mem, &addr, &din);
        m.connect(&dout, &mem.read(&addr));
        let report = check_circuit(&m.into_circuit());
        assert!(
            report.errors().any(|d| d.code == rechisel_firrtl::ErrorCode::TypeMismatch),
            "{report:?}"
        );
    }

    #[test]
    fn memory_zero_depth_rejected() {
        let mut m = ModuleBuilder::new("Empty");
        let dout = m.output("dout", Type::uint(8));
        let mem = m.mem("store", Type::uint(8), 0);
        m.connect(&dout, &mem.read(&Signal::lit_w(0, 1)));
        let report = check_circuit(&m.into_circuit());
        assert!(report.has_errors(), "zero-depth memory must be rejected");
    }

    #[test]
    fn memory_cannot_be_connected_directly() {
        let mut m = ModuleBuilder::new("DirectDrive");
        let din = m.input("din", Type::uint(8));
        let dout = m.output("dout", Type::uint(8));
        let mem = m.mem("store", Type::uint(8), 8);
        // Bypass the write port and drive the memory like a wire.
        let bogus = Signal::new(Expression::reference("store"), Type::uint(8));
        m.connect(&bogus, &din);
        m.connect(&dout, &mem.read(&Signal::lit_w(0, 3)));
        let report = check_circuit(&m.into_circuit());
        assert!(
            report.errors().any(|d| d.code == rechisel_firrtl::ErrorCode::InvalidSink),
            "{report:?}"
        );
    }

    #[test]
    fn memory_write_ports_keep_their_own_clock_domains() {
        // Regression test for the PR-4 known gap: the clocking pass accepted per-port
        // `withClock` on mem writes, but lowering resolved only ONE clock per memory
        // (first rejecting, and before that silently collapsing, the second domain).
        // Each lowered port must now carry its own clock net.
        let mut m = ModuleBuilder::raw("DualClock");
        let clk_a = m.input("clk_a", Type::Clock);
        let clk_b = m.input("clk_b", Type::Clock);
        let addr_a = m.input("addr_a", Type::uint(2));
        let addr_b = m.input("addr_b", Type::uint(2));
        let din = m.input("din", Type::uint(4));
        let dout = m.output("dout", Type::uint(4));
        let mem = m.mem("store", Type::uint(4), 4);
        m.with_clock(&clk_a, |m| m.mem_write(&mem, &addr_a, &din));
        m.with_clock(&clk_b, |m| m.mem_write(&mem, &addr_b, &din));
        m.connect(&dout, &mem.read(&addr_a));
        let c = m.into_circuit();
        assert!(!check_circuit(&c).has_errors(), "{:?}", check_circuit(&c));
        let netlist = lower_circuit(&c).unwrap();
        assert_eq!(netlist.mems[0].writes.len(), 2);
        assert_eq!(netlist.mems[0].writes[0].clock, "clk_a");
        assert_eq!(netlist.mems[0].writes[1].clock, "clk_b");
        // Two ports on one explicit clock still lower (and share the domain).
        let mut m = ModuleBuilder::raw("OneClock");
        let clk_a = m.input("clk_a", Type::Clock);
        let addr = m.input("addr", Type::uint(2));
        let din = m.input("din", Type::uint(4));
        let dout = m.output("dout", Type::uint(4));
        let mem = m.mem("store", Type::uint(4), 4);
        m.with_clock(&clk_a, |m| {
            m.mem_write(&mem, &addr, &din);
            m.mem_write(&mem, &addr, &din);
        });
        m.connect(&dout, &mem.read(&addr));
        let netlist = lower_circuit(&m.into_circuit()).unwrap();
        assert_eq!(netlist.mems[0].writes.len(), 2);
        assert!(netlist.mems[0].writes.iter().all(|w| w.clock == "clk_a"));
    }

    #[test]
    fn masked_write_and_init_build_and_lower() {
        let mut m = ModuleBuilder::new("MaskedInit");
        let addr = m.input("addr", Type::uint(2));
        let data = m.input("data", Type::uint(8));
        let mask = m.input("mask", Type::uint(8));
        let dout = m.output("dout", Type::uint(8));
        let mem = m.mem("store", Type::uint(8), 4);
        m.mem_init(&mem, &[0x11, 0x22]);
        m.mem_write_masked(&mem, &addr, &data, &mask);
        m.connect(&dout, &mem.read(&addr));
        let c = m.into_circuit();
        assert!(!check_circuit(&c).has_errors(), "{:?}", check_circuit(&c));
        let netlist = lower_circuit(&c).unwrap();
        assert_eq!(netlist.mems[0].init, vec![0x11, 0x22]);
        assert!(netlist.mems[0].writes[0].mask.is_some());
    }

    #[test]
    #[should_panic(expected = "not declared in this builder")]
    fn mem_init_with_a_foreign_handle_panics() {
        let mut other = ModuleBuilder::new("Other");
        let foreign = other.mem("store", Type::uint(8), 4);
        // A handle from a different builder must not silently drop the image.
        let mut m = ModuleBuilder::new("This");
        m.mem_init(&foreign, &[1, 2]);
    }

    #[test]
    fn sync_read_lowers_to_an_implicit_register() {
        let mut m = ModuleBuilder::new("SyncRead");
        let addr = m.input("addr", Type::uint(2));
        let dout = m.output("dout", Type::uint(8));
        let mem = m.mem("store", Type::uint(8), 4);
        m.connect(&dout, &mem.read_sync(&addr));
        let c = m.into_circuit();
        assert!(!check_circuit(&c).has_errors(), "{:?}", check_circuit(&c));
        let netlist = lower_circuit(&c).unwrap();
        assert_eq!(netlist.mems[0].sync_reads, vec!["store_sr0".to_string()]);
        assert!(netlist.regs.iter().any(|r| r.name == "store_sr0"));
        // The implicit read register owns a slot like any other register.
        assert!(netlist.slot_assignment().slot_of("store_sr0").is_some());
    }

    #[test]
    fn sync_read_in_raw_module_requires_a_clock() {
        let mut m = ModuleBuilder::raw("NoClockSync");
        let addr = m.input("addr", Type::uint(2));
        let dout = m.output("dout", Type::uint(8));
        let mem = m.mem("store", Type::uint(8), 4);
        m.connect(&dout, &mem.read_sync(&addr));
        let report = check_circuit(&m.into_circuit());
        assert!(
            report.errors().any(|d| d.code == rechisel_firrtl::ErrorCode::NoImplicitClock),
            "{report:?}"
        );
    }

    #[test]
    fn mem_init_file_parses_readmemh_style_images() {
        let dir = std::env::temp_dir();
        let path = dir.join(format!("rechisel_mem_init_{}.hex", std::process::id()));
        std::fs::write(&path, "// squares table\n00\n01\n04  // three squared is next\n09\n\n")
            .unwrap();
        let mut m = ModuleBuilder::new("Rom");
        let addr = m.input("addr", Type::uint(2));
        let dout = m.output("dout", Type::uint(8));
        let mem = m.mem("rom", Type::uint(8), 4);
        m.mem_init_file(&mem, &path).unwrap();
        m.connect(&dout, &mem.read(&addr));
        std::fs::remove_file(&path).ok();
        let netlist = lower_circuit(&m.into_circuit()).unwrap();
        assert_eq!(netlist.mems[0].init, vec![0x00, 0x01, 0x04, 0x09]);
        // A malformed image is an InvalidData error, not a panic.
        let bad = dir.join(format!("rechisel_mem_init_bad_{}.hex", std::process::id()));
        std::fs::write(&bad, "zz\n").unwrap();
        let mut m = ModuleBuilder::new("BadRom");
        let mem = m.mem("rom", Type::uint(8), 4);
        let err = m.mem_init_file(&mem, &bad).unwrap_err();
        std::fs::remove_file(&bad).ok();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
    }

    #[test]
    fn raw_module_register_fails_clock_check() {
        let mut m = ModuleBuilder::raw("NoClock");
        let a = m.input("a", Type::uint(4));
        let out = m.output("out", Type::uint(4));
        let r = m.reg_next("r", Type::uint(4), &a);
        m.connect(&out, &r);
        let c = m.into_circuit();
        assert!(check_circuit(&c).has_errors());
    }

    #[test]
    fn raw_module_with_explicit_clock_is_clean() {
        let mut m = ModuleBuilder::raw("WithClock");
        let clk = m.input("clk", Type::Clock);
        let a = m.input("a", Type::uint(4));
        let out = m.output("out", Type::uint(4));
        let mut captured = None;
        m.with_clock(&clk, |m| {
            captured = Some(m.reg_next("r", Type::uint(4), &a));
        });
        let r = captured.unwrap();
        m.connect(&out, &r);
        let c = m.into_circuit();
        assert!(!check_circuit(&c).has_errors(), "{:?}", check_circuit(&c));
    }

    #[test]
    fn source_lines_increase() {
        let mut m = ModuleBuilder::new("Lines");
        let a = m.input("a", Type::bool());
        let out = m.output("out", Type::bool());
        m.connect(&out, &a);
        let module = m.finish();
        let infos: Vec<u32> = module.body.iter().map(|s| s.info().line).collect();
        assert!(infos.windows(2).all(|w| w[0] < w[1]) || infos.len() < 2);
        assert!(module.port("a").unwrap().info.line < module.port("out").unwrap().info.line);
    }
}
