//! Inspect the benchmark suite itself: category/family composition, interface sizes and
//! a zero-shot difficulty probe — the kind of summary one would use to sanity-check the
//! suite against the paper's description of its 216 filtered cases.
//!
//! Run with `cargo run --release --example benchmark_sweep`.

use std::collections::BTreeMap;

use rechisel::benchsuite::report::format_table;
use rechisel::benchsuite::{full_suite, run_model, ExperimentConfig};
use rechisel::llm::ModelProfile;

fn main() {
    let suite = full_suite();
    println!("Suite size: {} cases\n", suite.len());

    let mut by_category: BTreeMap<String, usize> = BTreeMap::new();
    let mut by_family: BTreeMap<String, usize> = BTreeMap::new();
    for case in &suite {
        *by_category.entry(case.category.to_string()).or_default() += 1;
        *by_family.entry(case.family.to_string()).or_default() += 1;
    }
    let rows: Vec<Vec<String>> =
        by_category.iter().map(|(k, v)| vec![k.clone(), v.to_string()]).collect();
    println!("{}", format_table("Cases by category", &["Category", "Count"], &rows));
    let rows: Vec<Vec<String>> =
        by_family.iter().map(|(k, v)| vec![k.clone(), v.to_string()]).collect();
    println!("{}", format_table("Cases by source family", &["Family", "Count"], &rows));

    // Quick zero-shot probe over a slice of the suite to show per-category difficulty.
    let probe: Vec<_> = suite.into_iter().step_by(6).collect();
    let config = ExperimentConfig::paper().with_samples(2).with_max_iterations(0);
    let outcome = run_model(&ModelProfile::gpt4o(), &probe, &config);
    let mut per_category: BTreeMap<String, (usize, usize)> = BTreeMap::new();
    for (case, case_outcome) in probe.iter().zip(&outcome.cases) {
        let entry = per_category.entry(case.category.to_string()).or_default();
        for sample in &case_outcome.samples {
            entry.0 += 1;
            if sample.success {
                entry.1 += 1;
            }
        }
    }
    let rows: Vec<Vec<String>> = per_category
        .iter()
        .map(|(category, (total, ok))| {
            vec![
                category.clone(),
                format!("{ok}/{total}"),
                format!("{:.0}%", 100.0 * *ok as f64 / (*total).max(1) as f64),
            ]
        })
        .collect();
    println!(
        "{}",
        format_table(
            "Zero-shot successes by category (GPT-4o profile, probe subset)",
            &["Category", "Solved", "Rate"],
            &rows
        )
    );
}
