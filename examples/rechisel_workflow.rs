//! Run the full ReChisel workflow on a handful of benchmark cases with two model
//! profiles and print a small scoreboard — a miniature version of the paper's Table III.
//!
//! Run with `cargo run --release --example rechisel_workflow`.

use rechisel::benchsuite::report::{format_table, pct};
use rechisel::benchsuite::runner::run_model_with_engine;
use rechisel::benchsuite::{sampled_suite, ExperimentConfig};
use rechisel::core::{CollectingObserver, RunEventKind};
use rechisel::llm::ModelProfile;

fn main() {
    let suite = sampled_suite(12);
    let config = ExperimentConfig::paper().with_samples(4).with_max_iterations(10);
    println!(
        "Running {} cases x {} samples x 2 models (reflection cap 10)...\n",
        suite.len(),
        config.samples
    );

    let mut rows = Vec::new();
    for profile in [ModelProfile::gpt4o(), ModelProfile::claude35_sonnet()] {
        // The observer streams every run's events during the sweep; here we just count
        // iterations, but a telemetry layer would subscribe the same way.
        let observer = CollectingObserver::new();
        let engine = config.engine_with_observer(observer.clone());
        let outcome = run_model_with_engine(&engine, &profile, &suite, &config);
        let iterations_streamed = observer
            .take()
            .into_iter()
            .filter(|e| matches!(e.kind, RunEventKind::IterationStarted { .. }))
            .count();
        println!("  {}: streamed {iterations_streamed} iteration events", profile.name);
        let (escapes, escape_fraction) = outcome.escape_stats();
        rows.push(vec![
            profile.name.clone(),
            pct(outcome.pass_at_k(1, 0)),
            pct(outcome.pass_at_k(1, 5)),
            pct(outcome.pass_at_k(1, 10)),
            format!("{:.2}", outcome.mean_iterations()),
            format!("{escapes} ({:.0}% of runs)", escape_fraction * 100.0),
        ]);
    }
    let table = format_table(
        "Pass@1 (%) by iteration cap",
        &["Model", "n=0", "n=5", "n=10", "mean iters", "escape events"],
        &rows,
    );
    println!("{table}");
    println!(
        "Both models improve substantially over their zero-shot baseline as the reflection \
         budget grows — the paper's headline result."
    );
}
