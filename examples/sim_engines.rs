//! Simulation-engine selection: the interpreter vs the compiled instruction tape.
//!
//! Demonstrates the `SimEngine` seam end to end: drive the same design through both
//! engines via the trait object, verify they agree cycle-for-cycle, time a long run on
//! each, and show how the engine choice threads through a benchmark sweep via
//! `ExperimentConfig`.
//!
//! Run with: `cargo run --release --example sim_engines`

use std::time::Instant;

use rechisel::benchsuite::circuits::sequential;
use rechisel::benchsuite::{sampled_suite, ExperimentConfig, SourceFamily};
use rechisel::sim::{EngineKind, SimEngine};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // An 8x8 register file from the benchmark suite; any lowered netlist works.
    let case = sequential::register_file(8, 8, SourceFamily::Rtllm);
    let netlist = case.reference_netlist();

    // The same driver code runs against either engine through the SimEngine trait.
    println!("engine agreement on {}:", netlist.name);
    let mut engines: Vec<(EngineKind, Box<dyn SimEngine>)> = Vec::new();
    for kind in [EngineKind::Interp, EngineKind::Compiled] {
        let mut sim = kind.simulator(netlist)?;
        sim.reset(2)?;
        sim.poke("we", 1)?;
        sim.poke("waddr", 3)?;
        sim.poke("wdata", 0xAB)?;
        sim.step()?;
        sim.poke("we", 0)?;
        sim.poke("raddr", 3)?;
        sim.step()?;
        println!("  {kind:>8}: rdata = {:#x} after {} cycles", sim.peek("rdata")?, sim.cycles());
        engines.push((kind, sim));
    }
    assert_eq!(engines[0].1.outputs(), engines[1].1.outputs());

    // Throughput: the compiled tape pays one compilation, then steps with no
    // hashing or allocation per cycle.
    const CYCLES: u32 = 20_000;
    println!("\nper-cycle throughput over {CYCLES} cycles:");
    let mut times = Vec::new();
    for kind in [EngineKind::Interp, EngineKind::Compiled] {
        let mut sim = kind.simulator(netlist)?;
        sim.reset(2)?;
        sim.poke("we", 1)?;
        let start = Instant::now();
        sim.step_n(CYCLES)?;
        let elapsed = start.elapsed();
        println!("  {kind:>8}: {:>7.1} ns/cycle", elapsed.as_nanos() as f64 / f64::from(CYCLES));
        times.push(elapsed);
    }
    println!(
        "  compiled speedup: {:.1}x",
        times[0].as_secs_f64() / times[1].as_secs_f64().max(f64::MIN_POSITIVE)
    );

    // Sweeps select the engine in one place; results are identical either way.
    let suite = sampled_suite(4);
    let fast = ExperimentConfig::quick().with_samples(2);
    let slow = fast.with_sim_engine(EngineKind::Interp);
    let a = rechisel::benchsuite::run_model(&rechisel::llm::ModelProfile::gpt4o(), &suite, &fast);
    let b = rechisel::benchsuite::run_model(&rechisel::llm::ModelProfile::gpt4o(), &suite, &slow);
    assert_eq!(a.pass_at_k(1, 5), b.pass_at_k(1, 5));
    println!(
        "\nsweep pass@1 identical on both engines: {:.3} (default engine: {})",
        a.pass_at_k(1, 5),
        ExperimentConfig::quick().sim_engine
    );
    Ok(())
}
