//! Native codegen engine: the levelized tape as straight-line machine code.
//!
//! Walks the whole generate → build → `dlopen` → run pipeline on a suite circuit:
//! show the Rust source `rechisel::sim::codegen` emits for the tape, AOT-build it
//! into a cdylib with `NativeSimulator`, verify it agrees with the compiled tape
//! engine step for step, time both, and demonstrate the documented fallback on a
//! dynamically-shaped design.
//!
//! Run with: `cargo run --release --example native_codegen`

use std::time::Instant;

use rechisel::benchsuite::circuits::fsm;
use rechisel::benchsuite::SourceFamily;
use rechisel::firrtl::lower_circuit;
use rechisel::hcl::prelude::*;
use rechisel::sim::{
    codegen, native_or_fallback, CompiledSimulator, NativeOptions, NativeSimulator, SimEngine, Tape,
};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A 1101 sequence detector from the benchmark suite; any static-shape netlist
    // works the same way.
    let case = fsm::sequence_detector(&[1, 1, 0, 1], SourceFamily::HdlBits);
    let netlist = case.reference_netlist();

    // Step 1 — generate: the tape becomes one Rust statement per instruction, with
    // slot indices, constants, and masks baked in as literals.
    let tape = Tape::compile(netlist)?;
    let source = codegen::emit_tape_source(&tape)?;
    let preview: Vec<&str> = source.lines().filter(|l| l.contains("s[")).take(6).collect();
    println!("generated {} lines of straight-line Rust; a taste:", source.lines().count());
    for line in preview {
        println!("    {}", line.trim());
    }

    // Step 2 — build + load: one offline `cargo build` of a self-contained crate,
    // then `dlopen` behind ABI-version and fingerprint checks. Builds are cached
    // process-wide by tape fingerprint, so this price is paid once per design.
    let start = Instant::now();
    let mut native = NativeSimulator::new(netlist, &NativeOptions::from_env())?;
    println!("\nAOT build + load: {:.2?} (cached for the rest of the process)", start.elapsed());

    // Step 3 — run: the native engine is a drop-in SimEngine; drive it in lockstep
    // with the compiled tape and check they agree on every output.
    let mut compiled = CompiledSimulator::new(netlist)?;
    compiled.reset(2)?;
    SimEngine::reset(&mut native, 2)?;
    for bit in [1u128, 1, 0, 1, 1, 1, 0, 1] {
        compiled.poke("din", bit)?;
        native.poke("din", bit)?;
        compiled.step();
        native.step();
        assert_eq!(compiled.outputs(), native.outputs());
    }
    println!(
        "native and compiled agree across a 1101-1101 stimulus; detected = {}",
        native.peek("detected")?
    );

    // Throughput: no dispatch loop, no per-instruction bounds checks — just the
    // arithmetic, as the optimizer sees the whole cycle at once.
    const CYCLES: u32 = 200_000;
    let start = Instant::now();
    compiled.step_n(CYCLES);
    let compiled_time = start.elapsed();
    let start = Instant::now();
    for _ in 0..CYCLES {
        native.step();
    }
    let native_time = start.elapsed();
    println!(
        "\nover {CYCLES} cycles: compiled {:>6.1} ns/cycle, native {:>6.1} ns/cycle ({:.1}x)",
        compiled_time.as_nanos() as f64 / f64::from(CYCLES),
        native_time.as_nanos() as f64 / f64::from(CYCLES),
        compiled_time.as_secs_f64() / native_time.as_secs_f64().max(f64::MIN_POSITIVE),
    );

    // Dynamically-shaped designs (here `dshl`, whose result width tracks the shift
    // value) cannot become static straight-line code; `native_or_fallback` degrades
    // them to the compiled engine with a typed, printable notice.
    let mut m = ModuleBuilder::new("DynShift");
    let a = m.input("a", Type::uint(8));
    let sh = m.input("sh", Type::uint(3));
    let out = m.output("out", Type::uint(16));
    m.connect(&out, &a.dshl(&sh).bits(15, 0));
    let dynamic = lower_circuit(&m.into_circuit())?;

    let (mut sim, fallback) = native_or_fallback(&dynamic)?;
    println!("\nfallback notice: {}", fallback.expect("dshl is dynamically shaped"));
    sim.poke("a", 1)?;
    sim.poke("sh", 4)?;
    sim.eval()?;
    assert_eq!(sim.peek("out")?, 16);
    println!("…and the fallback engine still simulates the design correctly.");

    Ok(())
}
