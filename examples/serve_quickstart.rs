//! Serving quickstart: start the experiment server in process, talk to it with the
//! blocking client — compile through the content-addressed artifact cache, run a
//! ReChisel session with live-streamed run events, and read the stats surface.
//!
//! The same wire protocol is what `rechisel-serve` (the standalone binary) speaks and
//! what `rechisel-load` (the load generator) drives; this example just keeps both
//! ends in one process.
//!
//! Run with `cargo run --example serve_quickstart`.

use rechisel::serve::client::{Client, SessionRequest};
use rechisel::serve::server::{Server, ServerConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // An ephemeral loopback port; the handle owns the worker-shard pool and the
    // shared artifact cache.
    let handle = Server::start(ServerConfig::default())?;
    println!("server listening on {}", handle.addr());

    let mut client = Client::connect(handle.addr())?;
    client.ping()?;

    // First compile is cold (full checked-circuit -> netlist -> tape pipeline);
    // the second is answered from the fingerprint-keyed cache.
    let case = "hdlbits/vector5";
    let cold = client.compile(case)?;
    println!(
        "compile #1: fingerprint {} ({} bytes of Verilog), cached = {}",
        cold.fingerprint, cold.verilog_bytes, cold.cached
    );
    let warm = client.compile(case)?;
    println!("compile #2: cached = {}", warm.cached);

    // The reference design passes its own testbench through the same worker pool.
    let sim = client.simulate(case)?;
    println!("simulate: passed = {}, {} checked points", sim.passed, sim.points);

    // A full ReChisel session: generate -> compile -> simulate -> reflect, with every
    // RunEvent streamed back over the wire as it happens.
    let outcome = client.run_session(
        &SessionRequest::new(case).sample(0).model("claude-3.5-sonnet").max_iterations(5),
    )?;
    println!("session: success = {} after {} iterations", outcome.success, outcome.iterations);
    for event in &outcome.events {
        println!("  event: {:?}", event.kind);
    }

    let stats = client.stats()?;
    println!(
        "stats: cache {} hits / {} misses (hit rate {:.2})",
        stats.cache_hits(),
        stats.cache_misses(),
        stats.cache_hit_rate()
    );

    handle.shutdown();
    println!("server drained and stopped");
    Ok(())
}
