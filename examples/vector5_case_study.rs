//! The paper's Fig. 8 case study: the `Vector5` problem from AutoChip's HDLBits set,
//! solved by the ReChisel reflection workflow.
//!
//! The example runs the workflow with a synthetic GPT-4o profile on the Vector5 case,
//! then prints the specification, the iteration-by-iteration trace (errors encountered
//! and revision plans issued) and the final Verilog.
//!
//! Run with `cargo run --example vector5_case_study`.

use rechisel::benchsuite::circuits::combinational;
use rechisel::benchsuite::runner::run_sample_with_engine;
use rechisel::core::{Engine, WorkflowConfig};
use rechisel::llm::{Language, ModelProfile};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let case = combinational::vector5();
    println!("=== specification ({}) ===\n{}", case.id, case.spec.to_prompt());

    let engine = Engine::builder().config(WorkflowConfig::paper_default()).build();

    // Search for a seed whose zero-shot generation is defective, so the reflection
    // process is visible (as in the paper's walkthrough the first attempts fail).
    let profile = ModelProfile::gpt4o();
    let mut chosen = None;
    for attempt in 0..32u32 {
        let result = run_sample_with_engine(&engine, &case, &profile, Language::Chisel, attempt);
        if result.success && result.success_iteration.unwrap_or(0) > 0 {
            chosen = Some((attempt, result));
            break;
        }
    }
    let (attempt, result) = chosen.unwrap_or_else(|| {
        (0, run_sample_with_engine(&engine, &case, &profile, Language::Chisel, 0))
    });

    println!("=== reflection trace (sample #{attempt}, model {}) ===", profile.name);
    for entry in result.trace.entries() {
        println!("--- iteration {} ---", entry.iteration);
        println!("feedback:\n{}", entry.feedback.to_report(rechisel::core::FeedbackDetail::Full));
        if let Some(plan) = &entry.plan {
            println!("revision plan:\n{}", plan.to_text());
        }
    }
    println!("{}", result.trace.to_text());
    println!(
        "outcome: success = {}, at iteration {:?}, escapes = {}",
        result.success, result.success_iteration, result.escapes
    );
    if let Some(verilog) = &result.final_verilog {
        println!("=== final Verilog ===\n{verilog}");
    }
    Ok(())
}
