//! Quickstart: build a small Chisel-like design, check it, lower it, emit Verilog and
//! simulate it — the full substrate pipeline without the agents.
//!
//! Run with `cargo run --example quickstart`.

use rechisel::firrtl::{check_circuit, lower_circuit, print_chisel};
use rechisel::hcl::prelude::*;
use rechisel::sim::Simulator;
use rechisel::verilog::emit_verilog;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // An 8-bit loadable up-counter with a terminal-count flag.
    let mut m = ModuleBuilder::new("LoadableCounter");
    let load = m.input("load", Type::bool());
    let value = m.input("value", Type::uint(8));
    let en = m.input("en", Type::bool());
    let count = m.output("count", Type::uint(8));
    let wrap = m.output("wrap", Type::bool());

    let reg = m.reg_init("reg", Type::uint(8), &Signal::lit_w(0, 8));
    m.when_else(
        &load,
        |m| m.connect(&reg, &value),
        |m| {
            m.when(&en, |m| {
                let next = reg.add(&Signal::lit_w(1, 8)).bits(7, 0);
                m.connect(&reg, &next);
            });
        },
    );
    m.connect(&count, &reg);
    m.connect(&wrap, &reg.eq(&Signal::lit_w(255, 8)));
    let circuit = m.into_circuit();

    println!("=== pseudo-Chisel source ===\n{}", print_chisel(&circuit));

    // 1. Check (the "Compiler" of the ReChisel workflow).
    let report = check_circuit(&circuit);
    println!("=== compiler diagnostics ===");
    if report.is_empty() {
        println!("(clean)\n");
    } else {
        println!("{}", report.to_compiler_output());
    }
    assert!(!report.has_errors());

    // 2. Lower and emit Verilog.
    let netlist = lower_circuit(&circuit)?;
    let verilog = emit_verilog(&netlist)?;
    println!("=== emitted Verilog ===\n{verilog}");

    // 3. Simulate.
    let mut sim = Simulator::new(netlist);
    sim.reset(2)?;
    sim.poke("load", 1)?;
    sim.poke("value", 250)?;
    sim.step()?;
    sim.poke("load", 0)?;
    sim.poke("en", 1)?;
    println!("=== simulation ===");
    for _ in 0..8 {
        println!(
            "cycle {:>3}: count = {:>3}, wrap = {}",
            sim.cycles(),
            sim.peek("count")?,
            sim.peek("wrap")?
        );
        sim.step()?;
    }
    Ok(())
}
