//! Quickstart: build a small Chisel-like design and drive it through the staged
//! pipeline — check, lower, emit (Verilog *and* FIRRTL backends), simulate — without
//! the agents.
//!
//! Run with `cargo run --example quickstart`.

use rechisel::firrtl::pipeline::{FirrtlBackend, Pipeline};
use rechisel::firrtl::print_chisel;
use rechisel::hcl::prelude::*;
use rechisel::sim::Simulator;
use rechisel::verilog::VerilogBackend;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // An 8-bit loadable up-counter with a terminal-count flag.
    let mut m = ModuleBuilder::new("LoadableCounter");
    let load = m.input("load", Type::bool());
    let value = m.input("value", Type::uint(8));
    let en = m.input("en", Type::bool());
    let count = m.output("count", Type::uint(8));
    let wrap = m.output("wrap", Type::bool());

    let reg = m.reg_init("reg", Type::uint(8), &Signal::lit_w(0, 8));
    m.when_else(
        &load,
        |m| m.connect(&reg, &value),
        |m| {
            m.when(&en, |m| {
                let next = reg.add(&Signal::lit_w(1, 8)).bits(7, 0);
                m.connect(&reg, &next);
            });
        },
    );
    m.connect(&count, &reg);
    m.connect(&wrap, &reg.eq(&Signal::lit_w(255, 8)));
    let circuit = m.into_circuit();

    println!("=== pseudo-Chisel source ===\n{}", print_chisel(&circuit));

    // 1. Check (the "Compiler" of the ReChisel workflow): stage one of the pipeline,
    //    with per-pass timing stats on the side.
    let pipeline = Pipeline::new(VerilogBackend);
    let (checked, stats) = pipeline.check_timed(&circuit);
    let checked = checked.map_err(|report| report.to_compiler_output())?;
    println!("=== checking passes ===");
    for timing in stats.timings() {
        println!(
            "{:<16} {:>8.1} us, {} diagnostics",
            timing.name,
            timing.duration.as_secs_f64() * 1e6,
            timing.diagnostics
        );
    }
    println!();

    // 2. Lower, then emit through two pluggable backends.
    let netlist = pipeline.lower(&checked)?;
    let verilog = pipeline.emit(&checked, &netlist)?;
    println!("=== emitted Verilog ({} backend) ===\n{verilog}", pipeline.backend().name());
    let firrtl_pipeline = pipeline.with_backend(FirrtlBackend);
    let firrtl = firrtl_pipeline.emit(&checked, &netlist)?;
    println!("=== emitted FIRRTL ({} backend) ===\n{firrtl}", firrtl_pipeline.backend().name());

    // 3. Simulate.
    let mut sim = Simulator::new(netlist);
    sim.reset(2)?;
    sim.poke("load", 1)?;
    sim.poke("value", 250)?;
    sim.step()?;
    sim.poke("load", 0)?;
    sim.poke("en", 1)?;
    println!("=== simulation ===");
    for _ in 0..8 {
        println!(
            "cycle {:>3}: count = {:>3}, wrap = {}",
            sim.cycles(),
            sim.peek("count")?,
            sim.peek("wrap")?
        );
        sim.step()?;
    }
    Ok(())
}
