//! Demonstrates the non-progress loop and the escape mechanism (paper §IV-C, Figs. 4–5).
//!
//! A model profile with a high "stuck" probability is run on one case with the escape
//! mechanism enabled and disabled; the example prints both traces so the discarded loop
//! is visible, plus aggregate success over a few samples. The escape events themselves
//! arrive through the streaming observer of the Engine/Session API.
//!
//! Run with `cargo run --example escape_mechanism`.

use rechisel::benchsuite::circuits::sequential;
use rechisel::benchsuite::runner::run_sample_with_engine;
use rechisel::benchsuite::SourceFamily;
use rechisel::core::{CollectingObserver, Engine, RunEventKind, WorkflowConfig};
use rechisel::llm::{GenerationRates, Language, ModelProfile, RepairRates};

/// A deliberately stubborn profile: always generates one syntax defect, often locks
/// onto a wrong fix, but responds well to an escape.
fn stubborn_profile() -> ModelProfile {
    ModelProfile {
        name: "Stubborn-LLM".into(),
        chisel: GenerationRates {
            syntax_rate: 1.0,
            functional_rate: 0.2,
            defect_density: 1.0,
            hard_case_rate: 0.0,
        },
        verilog: GenerationRates {
            syntax_rate: 0.2,
            functional_rate: 0.3,
            defect_density: 1.0,
            hard_case_rate: 0.0,
        },
        chisel_repair: RepairRates {
            syntax_repair: 0.45,
            functional_repair: 0.35,
            stuck_prob: 0.85,
            collateral_prob: 0.05,
            hopeless_rate: 0.0,
            escape_effectiveness: 0.9,
            unguided_factor: 0.35,
        },
        verilog_repair: ModelProfile::gpt4o().verilog_repair,
    }
}

fn main() {
    let case = sequential::accumulator(8, SourceFamily::Rtllm);
    let profile = stubborn_profile();

    let mut summary = Vec::new();
    for escape in [true, false] {
        let observer = CollectingObserver::new();
        let engine = Engine::builder()
            .config(WorkflowConfig::paper_default().with_max_iterations(10).with_escape(escape))
            .observer(observer.clone())
            .build();
        let mut successes = 0;
        let mut escapes = 0u32;
        let mut sample_trace = None;
        for sample in 0..8u32 {
            let result = run_sample_with_engine(&engine, &case, &profile, Language::Chisel, sample);
            if result.success {
                successes += 1;
            }
            escapes += result.escapes;
            if sample == 0 {
                sample_trace = Some(result);
            }
        }
        let label = if escape { "escape ENABLED" } else { "escape DISABLED" };
        println!("=== {label} ===");
        if let Some(result) = sample_trace {
            println!("sample 0 trace:\n{}", result.trace.to_text());
        }
        let streamed = observer
            .take()
            .into_iter()
            .filter(|e| matches!(e.kind, RunEventKind::EscapeFired { .. }))
            .count();
        println!(
            "successes: {successes}/8, total escape events: {escapes} (streamed {streamed} \
             EscapeFired events to the observer)\n"
        );
        summary.push((label, successes, escapes));
    }
    println!("Summary:");
    for (label, successes, escapes) in summary {
        println!("  {label:<16} -> {successes}/8 solved ({escapes} escapes)");
    }
    println!(
        "\nWith the escape mechanism the looping iterations are discarded and the model gets a \
         fresh chance at the fix (paper Fig. 5); without it the runs stay trapped in the \
         non-progress loop."
    );
}
