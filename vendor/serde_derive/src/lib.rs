//! No-op stand-ins for serde's derive macros (offline stub, see vendor/README.md).
//!
//! The repository derives `Serialize`/`Deserialize` on its IR types but never
//! serializes them (there is no `serde_json` in the tree), so the derives can
//! safely expand to nothing. When the real `serde` is swapped back in, these
//! derives regain their full meaning without any source changes.

use proc_macro::TokenStream;

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
