//! Offline deterministic stub of `proptest` (see vendor/README.md).
//!
//! Supports the subset used by this repository's property tests: the
//! `proptest!` macro with `pat in strategy` bindings, integer-range
//! strategies, `ProptestConfig::with_cases`, and the `prop_assert*` macros.
//! Cases are driven by a deterministic splitmix64 RNG seeded from the test
//! name, so failures reproduce across runs. (No shrinking — a failing case
//! reports the exact generated inputs via the assertion message instead.)

/// Number-of-cases configuration, mirroring `proptest::test_runner::ProptestConfig`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

pub mod test_runner {
    pub use super::ProptestConfig;

    /// Deterministic splitmix64 stream seeded from a test-identifying string.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        pub fn deterministic(name: &str) -> Self {
            // FNV-1a over the test name gives a stable per-test seed.
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x1000_0000_01b3);
            }
            TestRng { state: h }
        }

        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

pub mod strategy {
    use super::test_runner::TestRng;

    /// A value generator; implemented for the integer `Range` types used as
    /// strategies in `proptest!` bindings.
    pub trait Strategy {
        type Value;
        fn sample(&self, rng: &mut TestRng) -> Self::Value;
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as u128).wrapping_sub(self.start as u128);
                    let off = (u128::from(rng.next_u64()) % span) as $t;
                    self.start.wrapping_add(off)
                }
            }

            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi as u128).wrapping_sub(lo as u128).wrapping_add(1);
                    let off = (u128::from(rng.next_u64()) % span) as $t;
                    lo.wrapping_add(off)
                }
            }
        )*};
    }
    impl_range_strategy!(u8, u16, u32, u64, usize, u128);
}

pub mod prelude {
    pub use super::strategy::Strategy;
    pub use super::test_runner::TestRng;
    pub use super::ProptestConfig;
    pub use super::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Assert inside a property body. Panics (rather than returning a
/// `TestCaseError`) — equivalent observable behaviour under `cargo test`.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)*) => { assert!($cond, $($fmt)*) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_eq!($a, $b, $($fmt)*) };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_ne!($a, $b, $($fmt)*) };
}

/// The `proptest!` block macro: an optional `#![proptest_config(..)]` inner
/// attribute followed by `#[test] fn name(arg in strategy, ..) { body }` items.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr)) => {};
    (($cfg:expr)
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let mut rng = $crate::test_runner::TestRng::deterministic(concat!(
                module_path!(), "::", stringify!($name)
            ));
            for __case in 0..config.cases {
                $(let $arg = $crate::strategy::Strategy::sample(&($strat), &mut rng);)+
                $body
            }
        }
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// Range strategies respect their bounds.
        #[test]
        fn range_bounds_hold(a in 3usize..17, b in 0u128..256) {
            prop_assert!((3..17).contains(&a));
            prop_assert!(b < 256);
        }

        #[test]
        fn multiple_fns_expand(x in 1u32..8) {
            prop_assert!((1..8).contains(&x));
        }
    }

    #[test]
    fn rng_is_deterministic_per_name() {
        let mut a = TestRng::deterministic("x");
        let mut b = TestRng::deterministic("x");
        let mut c = TestRng::deterministic("y");
        assert_eq!(a.next_u64(), b.next_u64());
        assert_ne!(a.next_u64(), c.next_u64());
    }
}
