//! Offline stub of `criterion` (see vendor/README.md).
//!
//! Provides the subset used by this repository's benches: `Criterion`
//! (`default`, `sample_size`, `bench_function`), `Bencher::iter`, `black_box`,
//! and the `criterion_group!` / `criterion_main!` macros. Timing is plain
//! wall-clock sampling with a median report — enough to compare hot paths
//! while offline; swap in the real crate for statistics and HTML reports.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Benchmark driver. Runs each registered function `sample_size` times and
/// reports the median per-iteration wall-clock time.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 20 }
    }
}

impl Criterion {
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n >= 2, "sample_size must be >= 2");
        self.sample_size = n;
        self
    }

    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut samples = Vec::with_capacity(self.sample_size);
        // One untimed warmup sample, then the measured ones.
        for i in 0..=self.sample_size {
            let mut b = Bencher { elapsed: Duration::ZERO, iters: 0 };
            f(&mut b);
            if i > 0 && b.iters > 0 {
                samples.push(b.elapsed.as_nanos() / u128::from(b.iters));
            }
        }
        samples.sort_unstable();
        let median = samples.get(samples.len() / 2).copied().unwrap_or(0);
        println!("{id:<40} median {median:>12} ns/iter ({} samples)", samples.len());
        // Machine-readable sidecar: when CRITERION_JSON names a file, append one JSON
        // object per measurement (JSON Lines) so tooling does not have to scrape the
        // human-oriented stdout line above.
        if let Ok(path) = std::env::var("CRITERION_JSON") {
            if !path.is_empty() {
                use std::io::Write as _;
                let line = format!(
                    "{{\"id\":\"{}\",\"median_ns\":{},\"samples\":{}}}\n",
                    id.replace('\\', "\\\\").replace('"', "\\\""),
                    median,
                    samples.len()
                );
                let _ = std::fs::OpenOptions::new()
                    .create(true)
                    .append(true)
                    .open(&path)
                    .and_then(|mut f| f.write_all(line.as_bytes()));
            }
        }
        self
    }

    /// Accepted for CLI compatibility with the real crate; the stub has no
    /// persistent baselines to configure.
    pub fn configure_from_args(self) -> Self {
        self
    }
}

/// Per-sample measurement handle passed to the closure of
/// [`Criterion::bench_function`].
pub struct Bencher {
    elapsed: Duration,
    iters: u64,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // A fixed small batch keeps stub runtime bounded regardless of the
        // routine's cost; the median across samples smooths the noise.
        const BATCH: u64 = 10;
        let start = Instant::now();
        for _ in 0..BATCH {
            black_box(f());
        }
        self.elapsed += start.elapsed();
        self.iters += BATCH;
    }
}

#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trivial_bench(c: &mut Criterion) {
        c.bench_function("trivial", |b| b.iter(|| black_box(1u64 + 1)));
    }

    #[test]
    fn group_and_samples_run() {
        let mut c = Criterion::default().sample_size(3);
        trivial_bench(&mut c);
    }
}
