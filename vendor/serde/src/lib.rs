//! Offline stub of `serde` (see vendor/README.md).
//!
//! Exposes the `Serialize` / `Deserialize` names as marker traits plus the
//! no-op derive macros from the sibling `serde_derive` stub, which is all the
//! surface this repository uses.

pub use serde_derive::{Deserialize, Serialize};

/// Marker stand-in for `serde::Serialize`.
pub trait Serialize {}

/// Marker stand-in for `serde::Deserialize`.
pub trait Deserialize<'de>: Sized {}
