//! Offline deterministic stub of the `rand` crate (see vendor/README.md).
//!
//! Implements the subset of the rand 0.8 API surface used in this repository:
//! [`Rng`] (`gen`, `gen_range`, `gen_bool`), [`RngCore`], [`SeedableRng`] and
//! [`rngs::StdRng`]. The generator is a splitmix64 stream: statistically fine
//! for test-stimulus generation and, critically for the test-suite, fully
//! deterministic in the seed.

/// Low-level entropy source.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Construction of an RNG from a seed.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types producible from a uniform `u64` draw via [`Rng::gen`].
pub trait Standard: Sized {
    fn from_u64(raw: u64) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn from_u64(raw: u64) -> Self {
                raw as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for u128 {
    fn from_u64(raw: u64) -> Self {
        u128::from(raw)
    }
}

impl Standard for bool {
    fn from_u64(raw: u64) -> Self {
        raw & 1 == 1
    }
}

impl Standard for f64 {
    fn from_u64(raw: u64) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (raw >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Integer types usable as [`Rng::gen_range`] bounds.
pub trait SampleUniform: Copy + PartialOrd {
    fn sample_half_open(lo: Self, hi: Self, draw: u64) -> Self;
}

macro_rules! impl_sample_uniform {
    ($($t:ty => $wide:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open(lo: Self, hi: Self, draw: u64) -> Self {
                assert!(lo < hi, "gen_range: empty range");
                let span = (hi as $wide).wrapping_sub(lo as $wide) as u128;
                let off = (u128::from(draw) % span) as $wide;
                (lo as $wide).wrapping_add(off) as $t
            }
        }
    )*};
}
impl_sample_uniform!(
    u8 => u64, u16 => u64, u32 => u64, u64 => u64, usize => u64,
    i8 => i64, i16 => i64, i32 => i64, i64 => i64, isize => i64
);

impl SampleUniform for u128 {
    fn sample_half_open(lo: Self, hi: Self, draw: u64) -> Self {
        assert!(lo < hi, "gen_range: empty range");
        lo + u128::from(draw) % (hi - lo)
    }
}

/// High-level convenience methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    fn gen<T: Standard>(&mut self) -> T {
        T::from_u64(self.next_u64())
    }

    fn gen_range<T: SampleUniform>(&mut self, range: core::ops::Range<T>) -> T {
        let draw = self.next_u64();
        T::sample_half_open(range.start, range.end, draw)
    }

    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p must be in [0, 1]");
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic splitmix64 stream, standing in for rand's `StdRng`.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_in_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let mut c = StdRng::seed_from_u64(8);
        let va: Vec<u64> = (0..8).map(|_| a.gen()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.gen()).collect();
        let vc: Vec<u64> = (0..8).map(|_| c.gen()).collect();
        assert_eq!(va, vb);
        assert_ne!(va, vc);
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = rng.gen_range(3usize..17);
            assert!((3..17).contains(&v));
            let w = rng.gen_range(-5i64..5);
            assert!((-5..5).contains(&w));
            let x = rng.gen_range(0u128..1u128 << 80);
            assert!(x < 1u128 << 80);
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(2);
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }
}
