//! Cross-crate integration tests: the full pipeline from the Chisel-like HCL through
//! checking, lowering, Verilog emission and simulation, and the full ReChisel workflow
//! driven by the synthetic LLM over benchmark cases.

use rechisel::benchsuite::{run_model, sampled_suite, ExperimentConfig};
use rechisel::core::{
    ChiselCompiler, FunctionalTester, TemplateReviewer, TraceInspector, Workflow, WorkflowConfig,
};
use rechisel::hcl::prelude::*;
use rechisel::llm::{Language, ModelProfile, SyntheticLlm};
use rechisel::sim::{Simulator, Testbench};

#[test]
fn hcl_to_verilog_to_simulation_pipeline() {
    // A small ALU built with the HCL.
    let mut m = ModuleBuilder::new("MiniAlu");
    let op = m.input("op", Type::bool());
    let a = m.input("a", Type::uint(8));
    let b = m.input("b", Type::uint(8));
    let y = m.output("y", Type::uint(8));
    let sum = a.add(&b).bits(7, 0);
    let diff = a.sub(&b).bits(7, 0);
    m.connect(&y, &mux(&op, &diff, &sum));
    let circuit = m.into_circuit();

    let compiler = ChiselCompiler::new();
    let compiled = compiler.compile(&circuit).expect("MiniAlu compiles");
    assert!(compiled.verilog.contains("module MiniAlu"));
    assert!(compiled.verilog.contains("endmodule"));

    let mut sim = Simulator::new(compiled.netlist);
    sim.poke("a", 200).unwrap();
    sim.poke("b", 60).unwrap();
    sim.poke("op", 0).unwrap();
    sim.eval().unwrap();
    assert_eq!(sim.peek("y").unwrap(), (200 + 60) & 0xFF);
    sim.poke("op", 1).unwrap();
    sim.eval().unwrap();
    assert_eq!(sim.peek("y").unwrap(), 200 - 60);
}

#[test]
fn broken_design_produces_structured_feedback() {
    // A design with a partially initialized wire: the compiler feedback must name the
    // wire and carry the WireDefault suggestion (Table II row B3).
    let mut m = ModuleBuilder::new("Broken");
    let en = m.input("en", Type::bool());
    let out = m.output("out", Type::bool());
    let w = m.wire("w", Type::bool());
    m.when(&en, |m| m.connect(&w, &Signal::lit_bool(true)));
    m.connect(&out, &w);
    let circuit = m.into_circuit();

    let errors = ChiselCompiler::new().compile(&circuit).unwrap_err();
    assert!(errors.iter().any(|d| d.code == rechisel::firrtl::ErrorCode::NotFullyInitialized));
    let b3 =
        errors.iter().find(|d| d.code == rechisel::firrtl::ErrorCode::NotFullyInitialized).unwrap();
    assert_eq!(b3.subject.as_deref(), Some("w"));
    assert!(b3.suggestion.as_ref().unwrap().contains("WireDefault"));
}

#[test]
fn workflow_repairs_a_defective_generation() {
    // Use a strong profile and check that across a slice of cases and a few samples
    // each, runs that failed at iteration 0 get repaired by reflection. (A single case
    // can be hopeless for a given (case, model) hardness draw, so the scan covers the
    // whole slice rather than betting on one case.)
    let suite = sampled_suite(8);
    let workflow = Workflow::new(WorkflowConfig::paper_default());
    let profile = ModelProfile::claude35_sonnet();

    let mut repaired = 0;
    for case in &suite {
        let tester = case.tester();
        for sample in 0..6u32 {
            let mut llm = SyntheticLlm::new(
                profile.clone(),
                Language::Chisel,
                case.reference().clone(),
                case.seed(),
            );
            let mut reviewer = TemplateReviewer::new();
            let mut inspector = TraceInspector::new();
            let result =
                workflow.run(&mut llm, &mut reviewer, &mut inspector, &case.spec, &tester, sample);
            if result.success && result.success_iteration.unwrap_or(0) > 0 {
                repaired += 1;
                // A successful run must produce Verilog for the user.
                assert!(result.final_verilog.is_some());
            }
        }
    }
    assert!(repaired > 0, "expected at least one run to be repaired by reflection");
}

#[test]
fn reflection_beats_zero_shot_on_a_suite_slice() {
    let suite = sampled_suite(10);
    let config = ExperimentConfig::quick().with_samples(3);
    let outcome = run_model(&ModelProfile::claude35_haiku(), &suite, &config);
    let zero_shot = outcome.pass_at_k(1, 0);
    let full = outcome.pass_at_k(1, config.max_iterations);
    assert!(full >= zero_shot);
    assert!(full > 0.0, "some cases should be solved");
}

#[test]
fn chisel_baseline_is_weaker_than_verilog_but_rechisel_closes_the_gap() {
    // The paper's central comparison, on a small slice: zero-shot Chisel < zero-shot
    // Verilog, but with reflection the Chisel flow becomes comparable. The slice is
    // large enough (16 cases x 5 samples) that per-case hardness draws don't dominate
    // the estimate.
    let suite = sampled_suite(16);
    let samples = 5;
    let chisel = run_model(
        &ModelProfile::claude35_sonnet(),
        &suite,
        &ExperimentConfig::paper().with_samples(samples).with_max_iterations(10),
    );
    let autochip = rechisel::autochip::run_autochip_model(
        &ModelProfile::claude35_sonnet(),
        &suite,
        &rechisel::autochip::AutoChipConfig { samples, max_iterations: 10, ..Default::default() },
    );
    let chisel_zero = chisel.pass_at_k(1, 0);
    let verilog_zero = autochip.pass_at_k(1, 0);
    assert!(verilog_zero > chisel_zero, "verilog {verilog_zero} vs chisel {chisel_zero}");

    let chisel_full = chisel.pass_at_k(1, 10);
    let verilog_full = autochip.pass_at_k(1, 10);
    // "Comparable": within 15 percentage points on this small slice.
    assert!(
        (chisel_full - verilog_full).abs() < 0.15 || chisel_full > verilog_full,
        "rechisel {chisel_full} vs autochip {verilog_full}"
    );
}

#[test]
fn dual_clock_masked_sync_init_memory_round_trips_all_layers() {
    // The memory-v2 acceptance case: ONE memory with an initialization image, a
    // lane-masked write port on the implicit clock, a second (plain) write port in a
    // different clock domain, a combinational read and a sequential (registered)
    // read — through HCL → check → lower → Verilog, with byte-identical per-cycle
    // traces on the interpreter and the compiled engine.
    let mut m = ModuleBuilder::new("FullMemV2");
    let clk_b = m.input("clk_b", Type::Clock);
    let we_a = m.input("we_a", Type::bool());
    let addr_a = m.input("addr_a", Type::uint(3));
    let wdata_a = m.input("wdata_a", Type::uint(8));
    let wmask_a = m.input("wmask_a", Type::uint(8));
    let we_b = m.input("we_b", Type::bool());
    let addr_b = m.input("addr_b", Type::uint(3));
    let wdata_b = m.input("wdata_b", Type::uint(8));
    let raddr = m.input("raddr", Type::uint(3));
    let rnow = m.output("rnow", Type::uint(8));
    let rq = m.output("rq", Type::uint(8));
    let mem = m.mem("cells", Type::uint(8), 8);
    m.mem_init(&mem, &[0xDE, 0xAD, 0xBE, 0xEF]);
    m.when(&we_a, |m| m.mem_write_masked(&mem, &addr_a, &wdata_a, &wmask_a));
    m.with_clock(&clk_b, |m| {
        m.when(&we_b, |m| m.mem_write(&mem, &addr_b, &wdata_b));
    });
    m.connect(&rnow, &mem.read(&raddr));
    m.connect(&rq, &mem.read_sync(&raddr));
    let circuit = m.into_circuit();

    // HCL → FIRRTL checks → netlist → Verilog.
    let compiled = ChiselCompiler::new().compile(&circuit).expect("FullMemV2 compiles");
    let netlist = compiled.netlist;
    assert_eq!(netlist.mems[0].init, vec![0xDE, 0xAD, 0xBE, 0xEF]);
    assert_eq!(netlist.mems[0].writes.len(), 2);
    assert_eq!(netlist.mems[0].writes[0].clock, "clock");
    assert_eq!(netlist.mems[0].writes[1].clock, "clk_b");
    assert!(netlist.mems[0].writes[0].mask.is_some());
    assert_eq!(netlist.mems[0].sync_reads.len(), 1);
    assert!(compiled.verilog.contains("always @(posedge clock)"));
    assert!(compiled.verilog.contains("always @(posedge clk_b)"));
    assert!(compiled.verilog.contains("initial begin"));

    // Deterministic stimulus; every output and every memory word, every cycle, on
    // both engines — the traces must be byte-identical.
    let mut interp = Simulator::new(netlist.clone());
    let mut compiled_sim = rechisel::sim::CompiledSimulator::new(&netlist).unwrap();
    let trace = |sim: &mut dyn rechisel::sim::SimEngine| -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        sim.reset(2).unwrap();
        let mut state = 0x1234_5678_u64;
        for cycle in 0..24 {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let bits = state >> 16;
            sim.poke("we_a", u128::from(bits >> 1) & 1).unwrap();
            sim.poke("addr_a", u128::from(bits >> 2) & 7).unwrap();
            sim.poke("wdata_a", u128::from(bits >> 5) & 0xFF).unwrap();
            sim.poke("wmask_a", u128::from(bits >> 13) & 0xFF).unwrap();
            sim.poke("we_b", u128::from(bits >> 21) & 1).unwrap();
            sim.poke("addr_b", u128::from(bits >> 22) & 7).unwrap();
            sim.poke("wdata_b", u128::from(bits >> 25) & 0xFF).unwrap();
            sim.poke("raddr", u128::from(bits >> 33) & 7).unwrap();
            sim.step().unwrap();
            write!(out, "{cycle:02}").unwrap();
            for (name, value) in sim.outputs() {
                write!(out, " {name}={value}").unwrap();
            }
            for word in 0..8 {
                write!(out, " m{word}={}", sim.peek_mem("cells", word).unwrap()).unwrap();
            }
            out.push('\n');
        }
        out
    };
    let interp_trace = trace(&mut interp);
    let compiled_trace = trace(&mut compiled_sim);
    assert_eq!(interp_trace, compiled_trace, "engine traces diverge");
    // The init image is observable in the very first trace line's untouched words.
    assert!(!interp_trace.is_empty());
}

#[test]
fn functional_tester_detects_wrong_designs_end_to_end() {
    let mut good = ModuleBuilder::new("XorGate");
    let a = good.input("a", Type::bool());
    let b = good.input("b", Type::bool());
    let y = good.output("y", Type::bool());
    good.connect(&y, &a.xor(&b));
    let reference = ChiselCompiler::new().compile(&good.into_circuit()).unwrap().netlist;

    let mut wrong = ModuleBuilder::new("XorGate");
    let a = wrong.input("a", Type::bool());
    let b = wrong.input("b", Type::bool());
    let y = wrong.output("y", Type::bool());
    wrong.connect(&y, &a.or(&b));
    let dut = ChiselCompiler::new().compile(&wrong.into_circuit()).unwrap().netlist;

    let tb = Testbench::random_for(&reference, 16, 0, 9);
    let tester = FunctionalTester::new(reference, tb);
    let report = tester.test(&dut);
    assert!(!report.passed());
    assert!(report.failures.iter().all(|f| f.mismatched_ports() == vec!["y".to_string()]));
}
