//! Parity pin: the redesigned Pipeline/Session path must reproduce byte-identical
//! paper-table aggregates versus the pre-redesign workflow.
//!
//! The "legacy" side below is a *verbatim copy* of the reflection loop as it existed in
//! `rechisel_core::workflow::Workflow::run` before the Engine/Session redesign (fused
//! compiler call, no events), wrapped in the exact shape of the old
//! `benchsuite::runner::run_model`: a tester built once per case, one
//! explicitly-constructed agent trio per sample, everything serial. Keeping the old
//! loop inline here (rather than calling today's `Workflow::run`, which is a shim over
//! `Session::run`) means a semantic drift in the ported loop cannot cancel out of the
//! comparison. The "new" side is today's `run_model`, which routes through
//! `Engine`/`Session` with case × sample parallel scheduling. Every aggregate the paper
//! reports — Pass@k across caps, per-iteration status proportions, escape statistics —
//! is formatted to a string and compared byte-for-byte.

use rechisel::benchsuite::report::pct;
use rechisel::benchsuite::{
    run_model, sampled_suite, BenchmarkCase, CaseOutcome, ExperimentConfig, ModelOutcome,
};
use rechisel::core::{
    Candidate, ChiselCompiler, CommonErrorKnowledge, ErrorKind, Feedback, FunctionalTester,
    Generator, Inspector, IterationStatus, Reviewer, Spec, TemplateReviewer, Trace, TraceEntry,
    TraceInspector, WorkflowConfig, WorkflowResult,
};
use rechisel::llm::{ModelProfile, SyntheticLlm};

/// Pre-redesign `Workflow::evaluate`, verbatim: compile, then simulate.
fn legacy_evaluate(
    compiler: &ChiselCompiler,
    candidate: &Candidate,
    tester: &FunctionalTester,
) -> (Feedback, Option<String>) {
    match compiler.compile(&candidate.circuit) {
        Err(diagnostics) => (Feedback::Syntax { diagnostics }, None),
        Ok(compiled) => {
            let report = tester.test(&compiled.netlist);
            if report.passed() {
                (Feedback::Success, Some(compiled.verilog))
            } else {
                (
                    Feedback::Functional {
                        failures: report.failures,
                        total_points: report.total_points,
                    },
                    None,
                )
            }
        }
    }
}

/// Pre-redesign `Workflow::run`, verbatim (modulo `self.*` becoming parameters).
#[allow(clippy::too_many_arguments)]
fn legacy_run<G: Generator, R: Reviewer, I: Inspector>(
    config: &WorkflowConfig,
    compiler: &ChiselCompiler,
    knowledge: &CommonErrorKnowledge,
    generator: &mut G,
    reviewer: &mut R,
    inspector: &mut I,
    spec: &Spec,
    tester: &FunctionalTester,
    attempt: u32,
) -> WorkflowResult {
    let mut trace = Trace::new();
    let mut statuses = Vec::new();
    let mut candidate = generator.generate(spec, attempt);
    let mut final_verilog = None;
    let mut success_iteration = None;

    for iteration in 0..=config.max_iterations {
        let (feedback, verilog) = legacy_evaluate(compiler, &candidate, tester);
        let status = match feedback.error_kind() {
            None => IterationStatus::Success,
            Some(ErrorKind::Syntax) => IterationStatus::SyntaxError,
            Some(ErrorKind::Functional) => IterationStatus::FunctionalError,
        };
        statuses.push(status);

        if feedback.is_success() {
            success_iteration = Some(iteration);
            final_verilog = verilog;
            trace.push(TraceEntry {
                iteration,
                candidate: candidate.clone(),
                feedback,
                plan: None,
            });
            break;
        }

        if iteration == config.max_iterations {
            trace.push(TraceEntry {
                iteration,
                candidate: candidate.clone(),
                feedback,
                plan: None,
            });
            break;
        }

        let cycle = inspector.detect_cycle(&trace, &feedback);
        if let (Some(start), true) = (cycle, config.escape_enabled) {
            let _discarded = trace.discard_loop(start);
            if let Some(basis) = trace.last().cloned() {
                let plan =
                    reviewer.review(&basis.candidate, &basis.feedback, &trace, knowledge).escaped();
                trace.attach_plan(plan.clone());
                candidate = generator.revise(&basis.candidate, &plan, iteration + 1);
            } else {
                let plan = reviewer.review(&candidate, &feedback, &trace, knowledge).escaped();
                candidate = generator.revise(&candidate, &plan, iteration + 1);
            }
            continue;
        }

        trace.push(TraceEntry {
            iteration,
            candidate: candidate.clone(),
            feedback: feedback.clone(),
            plan: None,
        });
        let plan = reviewer.review(&candidate, &feedback, &trace, knowledge);
        trace.attach_plan(plan.clone());
        candidate = generator.revise(&candidate, &plan, iteration + 1);
    }

    WorkflowResult {
        success: success_iteration.is_some(),
        success_iteration,
        statuses,
        escapes: trace.escape_count(),
        trace,
        final_candidate: candidate,
        final_verilog,
    }
}

/// The pre-redesign sweep, reconstructed: serial, legacy-loop based.
fn legacy_model_outcome(
    profile: &ModelProfile,
    suite: &[BenchmarkCase],
    config: &ExperimentConfig,
) -> ModelOutcome {
    let workflow_config = config.workflow_config();
    let compiler = ChiselCompiler::new();
    let knowledge = if workflow_config.knowledge_enabled {
        CommonErrorKnowledge::standard()
    } else {
        CommonErrorKnowledge::empty()
    };
    let cases = suite
        .iter()
        .map(|case| {
            let tester = case.tester();
            let samples = (0..config.samples)
                .map(|sample| {
                    let mut llm = SyntheticLlm::new(
                        profile.clone(),
                        config.language,
                        case.reference().clone(),
                        case.seed(),
                    );
                    let mut reviewer = TemplateReviewer::new();
                    let mut inspector = TraceInspector::new();
                    legacy_run(
                        &workflow_config,
                        &compiler,
                        &knowledge,
                        &mut llm,
                        &mut reviewer,
                        &mut inspector,
                        &case.spec,
                        &tester,
                        sample,
                    )
                })
                .collect();
            CaseOutcome { case_id: case.id.clone(), samples }
        })
        .collect();
    ModelOutcome { model: profile.name.clone(), language: config.language, cases }
}

/// Formats every paper-table aggregate of an outcome into one string, so parity can be
/// asserted byte-for-byte.
fn aggregate_fingerprint(outcome: &ModelOutcome, max_iterations: u32) -> String {
    let mut out = String::new();
    for k in [1usize, 5, 10] {
        for cap in [0, 1, max_iterations / 2, max_iterations] {
            out.push_str(&format!("pass@{k}(n={cap}) = {}\n", pct(outcome.pass_at_k(k, cap))));
        }
    }
    for n in 0..=max_iterations {
        let (syntax, functional, success) = outcome.status_proportions(n);
        out.push_str(&format!(
            "proportions(n={n}) = {}/{}/{}\n",
            pct(syntax),
            pct(functional),
            pct(success)
        ));
    }
    let (escape_events, escape_fraction) = outcome.escape_stats();
    out.push_str(&format!("escapes = {escape_events} ({})\n", pct(escape_fraction)));
    out.push_str(&format!("mean_iterations = {:.6}\n", outcome.mean_iterations()));
    for case in &outcome.cases {
        let (n, c) = case.pass_counts(max_iterations);
        out.push_str(&format!("case {} = {c}/{n}\n", case.case_id));
    }
    out
}

#[test]
fn pipeline_session_path_reproduces_legacy_aggregates_byte_identically() {
    let suite = sampled_suite(8);
    for profile in [ModelProfile::claude35_sonnet(), ModelProfile::gpt4o_mini()] {
        let config = ExperimentConfig::quick().with_samples(3).with_threads(4);
        let legacy = legacy_model_outcome(&profile, &suite, &config);
        let redesigned = run_model(&profile, &suite, &config);
        assert_eq!(
            aggregate_fingerprint(&legacy, config.max_iterations),
            aggregate_fingerprint(&redesigned, config.max_iterations),
            "aggregates diverged for {}",
            profile.name
        );
    }
}

#[test]
fn case_by_sample_parallelism_is_deterministic() {
    let suite = sampled_suite(5);
    let profile = ModelProfile::gpt4_turbo();
    let serial =
        run_model(&profile, &suite, &ExperimentConfig::quick().with_samples(2).with_threads(1));
    let parallel =
        run_model(&profile, &suite, &ExperimentConfig::quick().with_samples(2).with_threads(8));
    assert_eq!(aggregate_fingerprint(&serial, 5), aggregate_fingerprint(&parallel, 5));
    // Result ordering is deterministic too: case ids arrive in suite order.
    let serial_ids: Vec<&str> = serial.cases.iter().map(|c| c.case_id.as_str()).collect();
    let parallel_ids: Vec<&str> = parallel.cases.iter().map(|c| c.case_id.as_str()).collect();
    assert_eq!(serial_ids, parallel_ids);
}
