//! Property-based tests over the core invariants of the substrate and the evaluation
//! machinery.

use proptest::prelude::*;
use rechisel::benchsuite::pass_at_k;
use rechisel::firrtl::{check_circuit, lower_circuit};
use rechisel::hcl::prelude::*;
use rechisel::llm::{inject_defects, DefectInstance, DefectKind};
use rechisel::sim::{Simulator, Testbench};

/// Reference design used by the injection properties.
fn rich_reference() -> Circuit {
    let mut m = ModuleBuilder::new("PropRich");
    let en = m.input("en", Type::bool());
    let a = m.input("a", Type::uint(6));
    let b = m.input("b", Type::uint(6));
    let sel = m.input("sel", Type::bool());
    let out = m.output("out", Type::uint(8));
    let flag = m.output("flag", Type::bool());
    let picked = mux(&sel, &a, &b);
    let acc = m.reg_init("acc", Type::uint(8), &Signal::lit_w(0, 8));
    m.when(&en, |m| {
        let next = acc.add(&picked).bits(7, 0);
        m.connect(&acc, &next);
    });
    m.connect(&out, &acc);
    m.connect(&flag, &a.eq(&b).or(&a.bit(0)));
    m.into_circuit()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// pass@k is a probability, monotone in both c and k.
    #[test]
    fn pass_at_k_is_a_monotone_probability(n in 1usize..20, c in 0usize..20, k in 1usize..20) {
        let c = c.min(n);
        let p = pass_at_k(n, c, k);
        prop_assert!((0.0..=1.0).contains(&p));
        if c < n {
            prop_assert!(pass_at_k(n, c + 1, k) >= p - 1e-12);
        }
        prop_assert!(pass_at_k(n, c, k + 1) >= p - 1e-12);
    }

    /// The simulated adder agrees with host arithmetic for arbitrary operands.
    #[test]
    fn simulated_adder_matches_host_addition(a in 0u128..256, b in 0u128..256) {
        let mut m = ModuleBuilder::new("PropAdder");
        let ia = m.input("a", Type::uint(8));
        let ib = m.input("b", Type::uint(8));
        let sum = m.output("sum", Type::uint(9));
        m.connect(&sum, &ia.add(&ib));
        let netlist = lower_circuit(&m.into_circuit()).unwrap();
        let mut sim = Simulator::new(netlist);
        sim.poke("a", a).unwrap();
        sim.poke("b", b).unwrap();
        sim.eval().unwrap();
        prop_assert_eq!(sim.peek("sum").unwrap(), a + b);
    }

    /// The simulated comparator agrees with host comparison.
    #[test]
    fn simulated_comparator_matches_host(a in 0u128..64, b in 0u128..64) {
        let mut m = ModuleBuilder::new("PropCmp");
        let ia = m.input("a", Type::uint(6));
        let ib = m.input("b", Type::uint(6));
        let lt = m.output("lt", Type::bool());
        let eq = m.output("eq", Type::bool());
        m.connect(&lt, &ia.lt(&ib));
        m.connect(&eq, &ia.eq(&ib));
        let netlist = lower_circuit(&m.into_circuit()).unwrap();
        let mut sim = Simulator::new(netlist);
        sim.poke("a", a).unwrap();
        sim.poke("b", b).unwrap();
        sim.eval().unwrap();
        prop_assert_eq!(sim.peek("lt").unwrap(), u128::from(a < b));
        prop_assert_eq!(sim.peek("eq").unwrap(), u128::from(a == b));
    }

    /// Every syntax defect kind, injected with an arbitrary seed, makes the design fail
    /// compilation — and the reference itself always stays clean.
    #[test]
    fn syntax_defects_always_break_compilation(seed in 0u64..5000, kind_index in 0usize..11) {
        let reference = rich_reference();
        prop_assert!(!check_circuit(&reference).has_errors());
        let kind = DefectKind::syntax_kinds()[kind_index];
        let broken = inject_defects(&reference, &[DefectInstance::new(kind, seed)]);
        prop_assert!(check_circuit(&broken).has_errors(), "kind {:?} seed {}", kind, seed);
    }

    /// Functional defects never break compilation (they must only be caught by
    /// simulation).
    #[test]
    fn functional_defects_always_compile(seed in 0u64..5000, kind_index in 0usize..6) {
        let reference = rich_reference();
        let kind = DefectKind::functional_kinds()[kind_index];
        let broken = inject_defects(&reference, &[DefectInstance::new(kind, seed)]);
        prop_assert!(!check_circuit(&broken).has_errors(), "kind {:?} seed {}", kind, seed);
        prop_assert!(lower_circuit(&broken).is_ok());
    }

    /// Random testbench generation is deterministic in the seed and never drives the
    /// reset port.
    #[test]
    fn random_testbenches_are_seeded_and_respect_reset(seed in 0u64..1000, points in 1usize..32) {
        let reference = rich_reference();
        let netlist = lower_circuit(&reference).unwrap();
        let a = Testbench::random_for(&netlist, points, 1, seed);
        let b = Testbench::random_for(&netlist, points, 1, seed);
        prop_assert_eq!(&a, &b);
        prop_assert_eq!(a.points.len(), points);
        for point in &a.points {
            prop_assert!(point.inputs.iter().all(|(name, _)| name != "reset" && name != "clock"));
        }
    }

    /// Lowered designs always simulate without structural errors for arbitrary inputs.
    #[test]
    fn lowered_reference_simulates_for_arbitrary_stimuli(
        a in 0u128..64, b in 0u128..64, en in 0u128..2, sel in 0u128..2, cycles in 1u32..8
    ) {
        let netlist = lower_circuit(&rich_reference()).unwrap();
        let mut sim = Simulator::new(netlist);
        sim.reset(2).unwrap();
        sim.poke("a", a).unwrap();
        sim.poke("b", b).unwrap();
        sim.poke("en", en).unwrap();
        sim.poke("sel", sel).unwrap();
        sim.step_n(cycles).unwrap();
        let out = sim.peek("out").unwrap();
        prop_assert!(out < 256);
        // With enable low the accumulator must stay at zero after reset.
        if en == 0 {
            prop_assert_eq!(out, 0);
        }
    }
}
