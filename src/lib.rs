//! # rechisel
//!
//! Facade crate of the ReChisel reproduction (DAC 2025, arXiv:2505.19734): re-exports
//! every sub-crate under one roof so that examples, integration tests and downstream
//! users can depend on a single crate.
//!
//! * [`hcl`] — Chisel-like hardware construction language.
//! * [`firrtl`] — FIRRTL-like IR, checking passes, diagnostics and lowering.
//! * [`verilog`] — Verilog AST and emitter.
//! * [`sim`] — cycle-accurate simulator and testbench framework.
//! * [`llm`] — synthetic LLM substrate (model profiles, defect taxonomy).
//! * [`core`] — the ReChisel agentic workflow (reflection + escape mechanism).
//! * [`benchsuite`] — 216-case benchmark suite, Pass@k, experiment runners.
//! * [`autochip`] — the AutoChip direct-Verilog baseline.
//! * [`serve`] — sharded experiment server (line protocol over TCP) with a
//!   content-addressed artifact cache, plus the blocking client.
//!
//! # Quickstart
//!
//! ```
//! use rechisel::hcl::prelude::*;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut m = ModuleBuilder::new("Inverter");
//! let a = m.input("a", Type::bool());
//! let y = m.output("y", Type::bool());
//! m.connect(&y, &a.not());
//! let circuit = m.into_circuit();
//!
//! assert!(!rechisel::firrtl::check_circuit(&circuit).has_errors());
//! let netlist = rechisel::firrtl::lower_circuit(&circuit)?;
//! let verilog = rechisel::verilog::emit_verilog(&netlist)?;
//! assert!(verilog.contains("module Inverter"));
//! # Ok(())
//! # }
//! ```

pub use rechisel_autochip as autochip;
pub use rechisel_benchsuite as benchsuite;
pub use rechisel_core as core;
pub use rechisel_firrtl as firrtl;
pub use rechisel_hcl as hcl;
pub use rechisel_llm as llm;
pub use rechisel_serve as serve;
pub use rechisel_sim as sim;
pub use rechisel_verilog as verilog;
